//! The per-node kernel.
//!
//! Owns the CPU, the cost model, the installed network devices, the
//! protocol handler table (dispatch by EtherType — CLIC and TCP/IP register
//! side by side, which is how CLIC coexists with the standard stack without
//! driver changes), the bottom-half queue and the process table.
//!
//! The Figure 8b improvement is the [`Kernel::direct_dispatch`] switch:
//! when set, the receive driver calls the protocol handler directly from
//! interrupt context instead of deferring through a bottom half.

use crate::costs::OsCosts;
use crate::process::{Pid, ProcessTable};
use clic_ethernet::Frame;
use clic_hw::Nic;
use clic_sim::catalog::counter_id;
use clic_sim::{Cpu, CpuClass, MetricId, Sim, SimDuration};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Interned metric ids — syscall/IRQ accounting runs per event, so names
/// are resolved against the catalog at compile time.
const M_SYSCALLS: MetricId = counter_id("os.syscalls");
const M_LIGHTWEIGHT_CALLS: MetricId = counter_id("os.lightweight_calls");
const M_CONTEXT_SWITCHES: MetricId = counter_id("os.context_switches");
const M_BOTTOM_HALVES: MetricId = counter_id("os.bottom_halves");

/// A protocol entry point, keyed by EtherType.
pub trait PacketHandler {
    /// Handle a frame that reached system memory on device `dev`. Called
    /// either from a bottom half (default) or directly from the receive
    /// interrupt (`direct_dispatch`); implementations charge their own CPU
    /// time through the kernel.
    fn handle(&self, sim: &mut Sim, kernel: &Rc<RefCell<Kernel>>, dev: usize, frame: Frame);
}

/// Kernel activity counters.
#[derive(Debug, Default, Clone)]
pub struct KernelStats {
    /// System calls executed.
    pub syscalls: u64,
    /// Lightweight calls executed.
    pub lightweight_calls: u64,
    /// Receive interrupts serviced (top halves).
    pub irqs: u64,
    /// Bottom halves dispatched.
    pub bhs: u64,
    /// Context switches charged for wakeups.
    pub context_switches: u64,
    /// Frames moved from NIC to system memory by the driver.
    pub frames_received: u64,
}

/// The kernel of one simulated node.
pub struct Kernel {
    /// Node identity (for diagnostics).
    pub node_id: u32,
    /// The node's processor.
    pub cpu: Rc<RefCell<Cpu>>,
    /// Cost model for kernel code paths.
    pub costs: OsCosts,
    /// Process bookkeeping.
    pub processes: ProcessTable,
    /// Figure 8b: driver calls the protocol module directly from the IRQ.
    pub direct_dispatch: bool,
    pub(crate) devices: Vec<Rc<RefCell<Nic>>>,
    handlers: BTreeMap<u16, Rc<dyn PacketHandler>>,
    bh_queue: VecDeque<Box<dyn FnOnce(&mut Sim)>>,
    bh_running: bool,
    pub(crate) halted: bool,
    pub(crate) stats: KernelStats,
}

impl Kernel {
    /// Create a kernel with its own CPU.
    pub fn new(node_id: u32, costs: OsCosts) -> Rc<RefCell<Kernel>> {
        Rc::new(RefCell::new(Kernel {
            node_id,
            cpu: Cpu::new(),
            costs,
            processes: ProcessTable::new(),
            direct_dispatch: false,
            devices: Vec::new(),
            handlers: BTreeMap::new(),
            bh_queue: VecDeque::new(),
            bh_running: false,
            halted: false,
            stats: KernelStats::default(),
        }))
    }

    /// Install a network device; wires the NIC's interrupt line to the
    /// driver's top half. Returns the device index.
    pub fn add_device(kernel: &Rc<RefCell<Kernel>>, nic: Rc<RefCell<Nic>>) -> usize {
        let idx = kernel.borrow().devices.len();
        kernel.borrow_mut().devices.push(nic);
        crate::driver::install_irq(kernel, idx);
        idx
    }

    /// Register the protocol handler for an EtherType.
    pub fn register_handler(&mut self, ethertype: u16, handler: Rc<dyn PacketHandler>) {
        let prev = self.handlers.insert(ethertype, handler);
        assert!(
            prev.is_none(),
            "duplicate handler for ethertype {ethertype:#x}"
        );
    }

    pub(crate) fn handler_for(&self, ethertype: u16) -> Option<Rc<dyn PacketHandler>> {
        self.handlers.get(&ethertype).cloned()
    }

    /// The NIC behind device `dev`.
    pub fn device(&self, dev: usize) -> Rc<RefCell<Nic>> {
        self.devices[dev].clone()
    }

    /// Installed device count.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Activity counters.
    pub fn stats(&self) -> KernelStats {
        self.stats.clone()
    }

    // ------------------------------------------------------------------
    // Node lifecycle (crash-stop / crash-restart)
    // ------------------------------------------------------------------

    /// Crash-stop the node: deferred bottom halves are discarded and every
    /// frame that reaches a device from now on is dropped at the driver —
    /// the machine is off. Protocol modules carry their own crash state
    /// (e.g. `ClicModule::crash`); halting the kernel models the OS side.
    pub fn halt(&mut self) {
        self.halted = true;
        self.bh_queue.clear();
    }

    /// Bring a halted node back. Protocol state does not survive the
    /// crash — modules must be restarted separately.
    pub fn resume(&mut self) {
        self.halted = false;
    }

    /// Whether the node is currently crash-stopped.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    // ------------------------------------------------------------------
    // CPU charging helpers
    // ------------------------------------------------------------------

    /// Charge `duration` of task-class CPU work, then run `f`.
    pub fn cpu_task(
        kernel: &Rc<RefCell<Kernel>>,
        sim: &mut Sim,
        duration: SimDuration,
        f: impl FnOnce(&mut Sim) + 'static,
    ) {
        let cpu = kernel.borrow().cpu.clone();
        Cpu::run(&cpu, sim, CpuClass::Task, duration, f);
    }

    /// Charge `duration` of interrupt-class CPU work, then run `f`.
    pub fn cpu_irq(
        kernel: &Rc<RefCell<Kernel>>,
        sim: &mut Sim,
        duration: SimDuration,
        f: impl FnOnce(&mut Sim) + 'static,
    ) {
        let cpu = kernel.borrow().cpu.clone();
        Cpu::run(&cpu, sim, CpuClass::Irq, duration, f);
    }

    /// Execute `body` under a standard system call (INT 80h): the 0.65 µs
    /// enter/leave cost is charged before the body runs.
    pub fn syscall(
        kernel: &Rc<RefCell<Kernel>>,
        sim: &mut Sim,
        body: impl FnOnce(&mut Sim) + 'static,
    ) {
        let cost = {
            let mut k = kernel.borrow_mut();
            k.stats.syscalls += 1;
            k.costs.syscall
        };
        sim.metrics.counter_inc_id(M_SYSCALLS);
        Self::cpu_task(kernel, sim, cost, body);
    }

    /// Execute `body` under a lightweight call (GAMMA-style: no scheduler
    /// pass on return).
    pub fn lightweight_call(
        kernel: &Rc<RefCell<Kernel>>,
        sim: &mut Sim,
        body: impl FnOnce(&mut Sim) + 'static,
    ) {
        let cost = {
            let mut k = kernel.borrow_mut();
            k.stats.lightweight_calls += 1;
            k.costs.lightweight_call
        };
        sim.metrics.counter_inc_id(M_LIGHTWEIGHT_CALLS);
        Self::cpu_task(kernel, sim, cost, body);
    }

    /// Wake `pid` (if blocked, the context-switch cost is charged), then
    /// run `cont` as the process's next step.
    pub fn wake(
        kernel: &Rc<RefCell<Kernel>>,
        sim: &mut Sim,
        pid: Pid,
        cont: impl FnOnce(&mut Sim) + 'static,
    ) {
        let cost = {
            let mut k = kernel.borrow_mut();
            if k.processes.wake(pid) {
                k.stats.context_switches += 1;
                sim.metrics.counter_inc_id(M_CONTEXT_SWITCHES);
                Some(k.costs.context_switch)
            } else {
                None
            }
        };
        match cost {
            Some(c) => Self::cpu_task(kernel, sim, c, cont),
            None => cont(sim),
        }
    }

    // ------------------------------------------------------------------
    // Bottom halves
    // ------------------------------------------------------------------

    /// Queue `work` as a bottom half. Bottom halves run as task-class CPU
    /// work, in FIFO order, each paying the dispatch cost.
    pub fn schedule_bh(
        kernel: &Rc<RefCell<Kernel>>,
        sim: &mut Sim,
        work: impl FnOnce(&mut Sim) + 'static,
    ) {
        let start = {
            let mut k = kernel.borrow_mut();
            k.bh_queue.push_back(Box::new(work));
            if k.bh_running {
                false
            } else {
                k.bh_running = true;
                true
            }
        };
        if start {
            Self::drain_bh(kernel, sim);
        }
    }

    fn drain_bh(kernel: &Rc<RefCell<Kernel>>, sim: &mut Sim) {
        let (work, cost) = {
            let mut k = kernel.borrow_mut();
            match k.bh_queue.pop_front() {
                Some(w) => {
                    k.stats.bhs += 1;
                    sim.metrics.counter_inc_id(M_BOTTOM_HALVES);
                    (w, k.costs.bh_dispatch)
                }
                None => {
                    k.bh_running = false;
                    return;
                }
            }
        };
        let kernel2 = kernel.clone();
        Self::cpu_task(kernel, sim, cost, move |sim| {
            work(sim);
            Self::drain_bh(&kernel2, sim);
        });
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("node_id", &self.node_id)
            .field("devices", &self.devices.len())
            .field("handlers", &self.handlers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clic_sim::SimTime;

    #[test]
    fn syscall_charges_cost_then_runs_body() {
        let mut sim = Sim::new(0);
        let kernel = Kernel::new(0, OsCosts::era_2002());
        let at = Rc::new(RefCell::new(SimTime::ZERO));
        let a = at.clone();
        Kernel::syscall(&kernel, &mut sim, move |s| *a.borrow_mut() = s.now());
        sim.run();
        assert_eq!(*at.borrow(), SimTime::from_ns(650));
        assert_eq!(kernel.borrow().stats().syscalls, 1);
    }

    #[test]
    fn lightweight_call_cheaper_than_syscall() {
        let mut sim = Sim::new(0);
        let kernel = Kernel::new(0, OsCosts::era_2002());
        let at = Rc::new(RefCell::new(SimTime::ZERO));
        let a = at.clone();
        Kernel::lightweight_call(&kernel, &mut sim, move |s| *a.borrow_mut() = s.now());
        sim.run();
        assert!(*at.borrow() < SimTime::from_ns(650));
        assert_eq!(kernel.borrow().stats().lightweight_calls, 1);
    }

    #[test]
    fn bottom_halves_run_fifo() {
        let mut sim = Sim::new(0);
        let kernel = Kernel::new(0, OsCosts::era_2002());
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = log.clone();
            Kernel::schedule_bh(&kernel, &mut sim, move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
        assert_eq!(kernel.borrow().stats().bhs, 5);
    }

    #[test]
    fn bh_scheduled_from_bh_runs_after() {
        let mut sim = Sim::new(0);
        let kernel = Kernel::new(0, OsCosts::era_2002());
        let log = Rc::new(RefCell::new(Vec::new()));
        let (k2, l2) = (kernel.clone(), log.clone());
        Kernel::schedule_bh(&kernel, &mut sim, move |sim| {
            l2.borrow_mut().push("outer");
            let l3 = l2.clone();
            Kernel::schedule_bh(&k2, sim, move |_| l3.borrow_mut().push("inner"));
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["outer", "inner"]);
    }

    #[test]
    fn wake_charges_context_switch_only_when_blocked() {
        let mut sim = Sim::new(0);
        let kernel = Kernel::new(0, OsCosts::era_2002());
        let pid = kernel.borrow_mut().processes.spawn("app");
        kernel.borrow_mut().processes.block(pid);
        let at = Rc::new(RefCell::new(None));
        let a = at.clone();
        Kernel::wake(&kernel, &mut sim, pid, move |s| {
            *a.borrow_mut() = Some(s.now());
        });
        sim.run();
        assert_eq!(at.borrow().unwrap(), SimTime::from_ns(4_000));
        assert_eq!(kernel.borrow().stats().context_switches, 1);

        // Waking a running process runs the continuation immediately.
        let hit = Rc::new(RefCell::new(false));
        let h = hit.clone();
        Kernel::wake(&kernel, &mut sim, pid, move |_| *h.borrow_mut() = true);
        assert!(*hit.borrow());
        assert_eq!(kernel.borrow().stats().context_switches, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate handler")]
    fn duplicate_ethertype_rejected() {
        struct Nop;
        impl PacketHandler for Nop {
            fn handle(&self, _: &mut Sim, _: &Rc<RefCell<Kernel>>, _: usize, _: Frame) {}
        }
        let kernel = Kernel::new(0, OsCosts::era_2002());
        kernel.borrow_mut().register_handler(0x88B5, Rc::new(Nop));
        kernel.borrow_mut().register_handler(0x88B5, Rc::new(Nop));
    }
}
