//! # clic-gamma — a GAMMA-like active-ports baseline
//!
//! §3.2 and §5 of the paper compare CLIC against GAMMA (Genoa Active
//! Message MAchine): GAMMA achieves lower latency (32 µs on GA620-class
//! hardware, 9.5 µs with the GII NIC) and higher bandwidth (768–824 Mb/s)
//! by giving up what CLIC keeps:
//!
//! * **lightweight system calls** — no scheduler pass on return (§3.2(a)),
//! * **active ports** — the receive handler runs straight out of the
//!   interrupt path into user memory; no bottom halves, no wakeups, no
//!   parked messages,
//! * **no transport reliability** — a lost frame is a lost message,
//! * **a minimal 8-byte header** and no ACK traffic.
//!
//! This crate is a *model calibrated to GAMMA's published figures*, not a
//! port of GAMMA (DESIGN.md §5); it exists to regenerate the §5 comparison
//! table with the same methodology as the CLIC and TCP numbers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use bytes::{BufMut, Bytes, BytesMut};
use clic_ethernet::{EtherType, Frame, MacAddr};
use clic_os::driver::hard_start_xmit;
use clic_os::{Kernel, PacketHandler, SkBuff};
use clic_sim::{Sim, SimDuration};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::{Rc, Weak};

/// GAMMA-like header: port(2) + total message length(4) + fragment
/// offset(2, in MTU units... kept as plain u16 fragment index).
pub const GAMMA_HEADER: usize = 8;

/// A delivered message.
#[derive(Debug, Clone)]
pub struct GammaMsg {
    /// Sender station.
    pub src: MacAddr,
    /// Active port it arrived on.
    pub port: u16,
    /// Message bytes.
    pub data: Bytes,
}

/// Per-port activity counters.
#[derive(Debug, Default, Clone)]
pub struct GammaStats {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Packets sent.
    pub packets_sent: u64,
    /// Messages fully delivered.
    pub msgs_received: u64,
    /// Packets received.
    pub packets_received: u64,
    /// Reassemblies abandoned because a fragment went missing (detected
    /// when a new message starts before the old one completed).
    pub broken_messages: u64,
}

/// Per-operation CPU costs — leaner than CLIC's by construction.
#[derive(Debug, Clone, Copy)]
pub struct GammaCosts {
    /// Send-side per-packet work.
    pub tx_per_packet: SimDuration,
    /// Receive-side per-packet work (header parse + handler dispatch).
    pub rx_per_packet: SimDuration,
}

impl GammaCosts {
    /// Calibrated to GAMMA's published overheads.
    pub fn era_2002() -> GammaCosts {
        GammaCosts {
            tx_per_packet: SimDuration::from_ns(400),
            rx_per_packet: SimDuration::from_ns(400),
        }
    }
}

type PortHandler = Rc<dyn Fn(&mut Sim, GammaMsg)>;

struct Assembly {
    total: usize,
    buf: BytesMut,
    port: u16,
}

/// The GAMMA-like kernel module of one node.
pub struct GammaModule {
    kernel: Weak<RefCell<Kernel>>,
    dev: usize,
    mac: MacAddr,
    max_chunk: usize,
    costs: GammaCosts,
    ports: BTreeMap<u16, PortHandler>,
    assembling: BTreeMap<MacAddr, Assembly>,
    stats: GammaStats,
}

struct Handler(Rc<RefCell<GammaModule>>);

impl PacketHandler for Handler {
    fn handle(&self, sim: &mut Sim, kernel: &Rc<RefCell<Kernel>>, _dev: usize, frame: Frame) {
        GammaModule::on_frame(&self.0, sim, kernel, frame);
    }
}

impl GammaModule {
    /// NIC configuration GAMMA programs for latency: no interrupt
    /// coalescing (GAMMA ships its own driver, unlike CLIC), and a deep RX
    /// ring — GAMMA has no transport-level flow control, so burst
    /// absorption is all the reliability it gets (its MPICH port added
    /// flow control for exactly this reason).
    pub fn tuned_nic_config() -> clic_hw::NicConfig {
        let mut cfg = clic_hw::NicConfig::gigabit_standard();
        cfg.coalesce_usecs = 0;
        cfg.coalesce_frames = 1;
        cfg.rx_ring = 4096;
        cfg
    }

    /// OS cost model for a GAMMA node: the rewritten driver strips the
    /// stock driver's bookkeeping (this is exactly the portability the
    /// paper trades away by *not* modifying drivers).
    pub fn tuned_os_costs() -> clic_os::OsCosts {
        let mut c = clic_os::OsCosts::era_2002();
        c.irq_entry = SimDuration::from_ns(1_500);
        c.driver_irq_fixed = SimDuration::from_ns(1_000);
        c.driver_rx_per_frame = SimDuration::from_ns(500);
        c.driver_tx_per_frame = SimDuration::from_ns(500);
        c
    }

    /// Install on `kernel` device `dev`. Switches the kernel to direct
    /// dispatch (active messages run straight from the interrupt path) —
    /// install GAMMA on dedicated nodes.
    pub fn install(kernel: &Rc<RefCell<Kernel>>, dev: usize) -> Rc<RefCell<GammaModule>> {
        let (mac, mtu) = {
            let k = kernel.borrow();
            let nic = k.device(dev);
            let (mac, mtu) = (nic.borrow().mac(), nic.borrow().mtu());
            (mac, mtu)
        };
        kernel.borrow_mut().direct_dispatch = true;
        let module = Rc::new(RefCell::new(GammaModule {
            kernel: Rc::downgrade(kernel),
            dev,
            mac,
            max_chunk: mtu - GAMMA_HEADER,
            costs: GammaCosts::era_2002(),
            ports: BTreeMap::new(),
            assembling: BTreeMap::new(),
            stats: GammaStats::default(),
        }));
        kernel
            .borrow_mut()
            .register_handler(EtherType::GAMMA.0, Rc::new(Handler(module.clone())));
        module
    }

    /// This node's station address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Counters snapshot.
    pub fn stats(&self) -> GammaStats {
        self.stats.clone()
    }

    /// Register the active handler for `port`.
    pub fn register_port(&mut self, port: u16, handler: impl Fn(&mut Sim, GammaMsg) + 'static) {
        let prev = self.ports.insert(port, Rc::new(handler));
        assert!(prev.is_none(), "GAMMA port {port} already active");
    }

    /// Send `data` to (`dst`, `port`) — best effort, 0-copy, through a
    /// lightweight system call.
    pub fn send(
        module: &Rc<RefCell<GammaModule>>,
        sim: &mut Sim,
        dst: MacAddr,
        port: u16,
        data: Bytes,
    ) {
        let kernel = module.borrow().kernel.upgrade().expect("kernel dropped");
        let module2 = module.clone();
        Kernel::lightweight_call(&kernel.clone(), sim, move |sim| {
            let (_dev, chunks, cost) = {
                let mut m = module2.borrow_mut();
                m.stats.msgs_sent += 1;
                let mut chunks = Vec::new();
                let total = data.len();
                let mut off = 0usize;
                loop {
                    let end = (off + m.max_chunk).min(total);
                    let mut pkt = BytesMut::with_capacity(GAMMA_HEADER + end - off);
                    pkt.put_u16(port);
                    pkt.put_u32(total as u32);
                    pkt.put_u16((off / m.max_chunk) as u16);
                    pkt.put_slice(&data[off..end]);
                    chunks.push(pkt.freeze());
                    if end >= total {
                        break;
                    }
                    off = end;
                }
                m.stats.packets_sent += chunks.len() as u64;
                (m.dev, chunks, m.costs.tx_per_packet)
            };
            let n = chunks.len() as u64;
            let kernel2 = kernel.clone();
            Kernel::cpu_task(&kernel, sim, cost * n, move |sim| {
                // Fragments must hit the wire in order; the send spins
                // (retries) when the TX ring is momentarily full, as
                // GAMMA's user-level send loop does.
                post_in_order(&kernel2, sim, dst, chunks.into(), 0);
            });
        });
    }

    fn on_frame(
        module: &Rc<RefCell<GammaModule>>,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        frame: Frame,
    ) {
        let cost = module.borrow().costs.rx_per_packet;
        let module2 = module.clone();
        Kernel::cpu_task(kernel, sim, cost, move |sim| {
            let delivery = {
                let mut m = module2.borrow_mut();
                m.stats.packets_received += 1;
                let p = &frame.payload;
                if p.len() < GAMMA_HEADER {
                    return;
                }
                let port = u16::from_be_bytes([p[0], p[1]]);
                let total = u32::from_be_bytes([p[2], p[3], p[4], p[5]]) as usize;
                let index = u16::from_be_bytes([p[6], p[7]]) as usize;
                let chunk_cap = m.max_chunk;
                let body_len = (total - (index * chunk_cap).min(total)).min(chunk_cap);
                if p.len() < GAMMA_HEADER + body_len {
                    return; // truncated
                }
                let body = p.slice(GAMMA_HEADER..GAMMA_HEADER + body_len);
                if index == 0 {
                    if m.assembling.remove(&frame.src).is_some() {
                        m.stats.broken_messages += 1;
                    }
                    m.assembling.insert(
                        frame.src,
                        Assembly {
                            total,
                            buf: BytesMut::with_capacity(total),
                            port,
                        },
                    );
                }
                let Some(a) = m.assembling.get_mut(&frame.src) else {
                    return; // middle fragment of a lost head
                };
                // In-order arrival assumed (switched Ethernet): a gap means
                // the message is unrecoverable; detected at next head.
                if a.buf.len() != index * chunk_cap {
                    return;
                }
                a.buf.put_slice(&body);
                if a.buf.len() >= a.total {
                    let a = m.assembling.remove(&frame.src).unwrap();
                    m.stats.msgs_received += 1;
                    let handler = m.ports.get(&a.port).cloned();
                    handler.map(|h| {
                        (
                            h,
                            GammaMsg {
                                src: frame.src,
                                port: a.port,
                                data: a.buf.freeze(),
                            },
                        )
                    })
                } else {
                    None
                }
            };
            if let Some((handler, msg)) = delivery {
                // Active message: the handler runs now, in the receive
                // path, against user memory.
                handler(sim, msg);
            }
        });
    }
}

/// Post `chunks` to the NIC strictly in order, retrying a refused post
/// after a short spin.
fn post_in_order(
    kernel: &Rc<RefCell<Kernel>>,
    sim: &mut Sim,
    dst: MacAddr,
    mut chunks: std::collections::VecDeque<Bytes>,
    retries: u32,
) {
    let Some(pkt) = chunks.pop_front() else {
        return;
    };
    let kernel2 = kernel.clone();
    let skb = SkBuff::zero_copy(Bytes::new(), pkt.clone());
    hard_start_xmit(
        kernel,
        sim,
        0,
        dst,
        EtherType::GAMMA,
        skb,
        move |sim, ok| {
            if ok {
                post_in_order(&kernel2, sim, dst, chunks, 0);
            } else if retries < 10_000 {
                chunks.push_front(pkt);
                let kernel3 = kernel2.clone();
                sim.schedule_in(SimDuration::from_us(5), move |sim| {
                    post_in_order(&kernel3, sim, dst, chunks, retries + 1);
                });
            }
            // After exhausting retries the rest of the message is lost —
            // best effort ends somewhere.
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use clic_ethernet::{Link, LinkEnd, LossModel};
    use clic_hw::{Nic, PciBus};
    use clic_sim::SimTime;

    struct Node {
        // Held so the module's Weak<Kernel> stays upgradable.
        #[allow(dead_code)]
        kernel: Rc<RefCell<Kernel>>,
        module: Rc<RefCell<GammaModule>>,
        mac: MacAddr,
    }

    fn mk_pair(loss: LossModel) -> (Node, Node) {
        let link = Link::gigabit();
        link.borrow_mut().set_loss(loss);
        let mut nodes = Vec::new();
        for (id, end) in [(1u32, LinkEnd::A), (2, LinkEnd::B)] {
            let kernel = Kernel::new(id, GammaModule::tuned_os_costs());
            let nic = Nic::new(
                MacAddr::for_node(id, 0),
                GammaModule::tuned_nic_config(),
                PciBus::pci_33mhz_32bit(),
                link.clone(),
                end,
            );
            Nic::attach_to_link(&nic);
            let dev = Kernel::add_device(&kernel, nic);
            let module = GammaModule::install(&kernel, dev);
            nodes.push(Node {
                kernel,
                module,
                mac: MacAddr::for_node(id, 0),
            });
        }
        let b = nodes.pop().unwrap();
        let a = nodes.pop().unwrap();
        (a, b)
    }

    type Inbox = Rc<RefCell<Vec<(SimTime, GammaMsg)>>>;

    fn port_into(node: &Node, port: u16) -> Inbox {
        let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
        let i = inbox.clone();
        node.module
            .borrow_mut()
            .register_port(port, move |sim, msg| {
                i.borrow_mut().push((sim.now(), msg));
            });
        inbox
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn message_end_to_end() {
        let mut sim = Sim::new(0);
        let (a, b) = mk_pair(LossModel::None);
        let inbox = port_into(&b, 3);
        let data = payload(1400);
        GammaModule::send(&a.module, &mut sim, b.mac, 3, data.clone());
        sim.run();
        assert_eq!(inbox.borrow().len(), 1);
        assert_eq!(inbox.borrow()[0].1.data, data);
        assert_eq!(inbox.borrow()[0].1.src, a.mac);
    }

    #[test]
    fn multi_fragment_message() {
        let mut sim = Sim::new(0);
        let (a, b) = mk_pair(LossModel::None);
        let inbox = port_into(&b, 3);
        let data = payload(50_000);
        GammaModule::send(&a.module, &mut sim, b.mac, 3, data.clone());
        sim.run();
        assert_eq!(inbox.borrow().len(), 1);
        assert_eq!(inbox.borrow()[0].1.data, data);
        assert!(a.module.borrow().stats().packets_sent > 30);
    }

    #[test]
    fn zero_byte_message() {
        let mut sim = Sim::new(0);
        let (a, b) = mk_pair(LossModel::None);
        let inbox = port_into(&b, 1);
        GammaModule::send(&a.module, &mut sim, b.mac, 1, Bytes::new());
        sim.run();
        assert_eq!(inbox.borrow().len(), 1);
        assert!(inbox.borrow()[0].1.data.is_empty());
    }

    #[test]
    fn no_reliability_lost_frame_loses_message() {
        let mut sim = Sim::new(0);
        let (a, b) = mk_pair(LossModel::EveryNth(2));
        let inbox = port_into(&b, 3);
        for _ in 0..4 {
            GammaModule::send(&a.module, &mut sim, b.mac, 3, payload(100));
        }
        sim.run();
        // Half the single-packet messages vanish, silently.
        assert_eq!(inbox.borrow().len(), 2);
        assert_eq!(a.module.borrow().stats().msgs_sent, 4);
    }

    #[test]
    fn gamma_latency_beats_clic_scale() {
        // The §5 table: GAMMA's latency is below CLIC's 36 µs.
        let mut sim = Sim::new(0);
        let (a, b) = mk_pair(LossModel::None);
        let inbox = port_into(&b, 3);
        GammaModule::send(&a.module, &mut sim, b.mac, 3, Bytes::new());
        sim.run();
        let t = inbox.borrow()[0].0;
        assert!(
            t < SimTime::from_us(36),
            "GAMMA 0-byte latency {t} should undercut CLIC's 36 us"
        );
    }

    #[test]
    fn unregistered_port_drops() {
        let mut sim = Sim::new(0);
        let (a, b) = mk_pair(LossModel::None);
        GammaModule::send(&a.module, &mut sim, b.mac, 9, payload(10));
        sim.run();
        let stats = b.module.borrow().stats();
        assert_eq!(stats.msgs_received, 1, "counted at reassembly");
    }
}
