//! Workspace-local stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, providing the subset of its API this repository's
//! benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves the `criterion` dependency to this path crate instead (see
//! the root `Cargo.toml`). `cargo bench` works the same way from the
//! outside — each `bench_function` runs its closure `sample_size` times
//! and prints the median, min and max wall-clock time per iteration —
//! but there is no warm-up modelling, outlier analysis, or HTML report.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: collects samples and prints a summary line per
/// benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run `f` as a named benchmark and print its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        bencher.samples.sort();
        let median = bencher.samples[bencher.samples.len() / 2];
        let min = *bencher.samples.first().unwrap_or(&Duration::ZERO);
        let max = *bencher.samples.last().unwrap_or(&Duration::ZERO);
        println!(
            "{name:<40} median {:>12} (min {}, max {}, n={})",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            bencher.samples.len(),
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Passed to each benchmark closure; times one iteration per call.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        drop(black_box(out));
    }
}

/// Group benchmark functions under a name with a shared config, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_sample_size_times() {
        let mut runs = 0usize;
        let mut c = crate::Criterion::default().sample_size(7);
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 7);
    }
}
