//! Transport backends for the message layers.
//!
//! A transport gives rank-addressed, reliable, ordered message delivery.
//! `ClicTransport` maps it onto CLIC ports (MPI packet type); the paper's
//! point is that this mapping is nearly free: "MPI and PVM point-to-point
//! communication functions can be easily mapped to reliable point-to-point
//! communications provided by the CLIC layer". `TcpTransport` maps it onto
//! a mesh of TCP connections with length-prefixed record framing — what
//! LAM-MPI/PVM over TCP actually did.

use bytes::{BufMut, Bytes, BytesMut};
use clic_core::module::SendOptions;
use clic_core::{ClicModule, PacketType};
use clic_ethernet::MacAddr;
use clic_os::Pid;
use clic_sim::catalog::{counter_id, histogram_id};
use clic_sim::{Layer, MetricId, Sim};
use clic_tcpip::tcp::TcpStack;
use clic_tcpip::{ConnId, IpAddr};
use std::cell::RefCell;
use std::rc::Rc;

/// Interned metric ids — send/recv account per message, so names are
/// resolved against the catalog at compile time.
const M_SENDS: MetricId = counter_id("mpi.sends");
const M_RECVS: MetricId = counter_id("mpi.recvs");
const M_MSG_BYTES: MetricId = histogram_id("mpi.msg_bytes");

/// Handler for inbound transport messages: `(source rank, payload)`.
pub type MsgHandler = Rc<dyn Fn(&mut Sim, usize, Bytes)>;

/// Rank-addressed reliable ordered message delivery.
pub trait Transport {
    /// This endpoint's rank.
    fn rank(&self) -> usize;
    /// Number of ranks.
    fn size(&self) -> usize;
    /// Send a message to `dst`.
    fn send(&self, sim: &mut Sim, dst: usize, data: Bytes);
    /// Install the delivery handler (call once, before traffic).
    fn set_handler(&self, handler: MsgHandler);
    /// True once the transport is ready to carry traffic.
    fn ready(&self) -> bool;
}

/// The CLIC channel the MPI layer rides on.
pub const MPI_CHANNEL: u16 = 0x4D50; // "MP"

// ---------------------------------------------------------------------
// CLIC backend
// ---------------------------------------------------------------------

/// MPI transport over CLIC.
pub struct ClicTransport {
    module: Rc<RefCell<ClicModule>>,
    rank: usize,
    peers: Vec<MacAddr>,
    handler: RefCell<Option<MsgHandler>>,
}

impl ClicTransport {
    /// Create rank `rank` of a job whose rank-to-station map is `peers`;
    /// `pid` is the local MPI process. Starts the receive loop.
    pub fn new(
        sim: &mut Sim,
        module: &Rc<RefCell<ClicModule>>,
        pid: Pid,
        rank: usize,
        peers: Vec<MacAddr>,
    ) -> Rc<ClicTransport> {
        assert!(rank < peers.len());
        module.borrow_mut().bind(pid, MPI_CHANNEL);
        let t = Rc::new(ClicTransport {
            module: module.clone(),
            rank,
            peers,
            handler: RefCell::new(None),
        });
        Self::recv_loop(t.clone(), sim);
        t
    }

    fn recv_loop(t: Rc<ClicTransport>, sim: &mut Sim) {
        let module = t.module.clone();
        ClicModule::recv(&module, sim, MPI_CHANNEL, move |sim, msg| {
            let src = t
                .peers
                .iter()
                .position(|&m| m == msg.src)
                .expect("message from station outside the job");
            sim.metrics.counter_inc_id(M_RECVS);
            sim.trace
                .instant(sim.now(), Layer::Mpi, "mpi_recv", src as u64);
            if let Some(h) = t.handler.borrow().clone() {
                h(sim, src, msg.data);
            }
            Self::recv_loop(t.clone(), sim);
        });
    }
}

impl Transport for ClicTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, sim: &mut Sim, dst: usize, data: Bytes) {
        sim.metrics.counter_inc_id(M_SENDS);
        sim.metrics.observe_id(M_MSG_BYTES, data.len() as u64);
        sim.trace
            .instant(sim.now(), Layer::Mpi, "mpi_send", dst as u64);
        let opts = SendOptions {
            ptype: PacketType::Mpi,
            ..SendOptions::data(self.peers[dst], MPI_CHANNEL)
        };
        ClicModule::send(&self.module, sim, opts, data);
    }

    fn set_handler(&self, handler: MsgHandler) {
        *self.handler.borrow_mut() = Some(handler);
    }

    fn ready(&self) -> bool {
        true // CLIC is connectionless
    }
}

// ---------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------

const TCP_BASE_PORT: u16 = 18_000;

/// MPI transport over a full mesh of TCP connections.
pub struct TcpTransport {
    stack: Rc<RefCell<TcpStack>>,
    rank: usize,
    peer_ips: Vec<IpAddr>,
    conns: RefCell<Vec<Option<ConnId>>>,
    handler: RefCell<Option<MsgHandler>>,
}

impl TcpTransport {
    /// Create rank `rank`; `peer_ips[r]` is rank r's address. Initiates the
    /// connection mesh (lower rank connects to higher rank); run the
    /// simulator until [`Transport::ready`] before sending.
    pub fn new(
        sim: &mut Sim,
        stack: &Rc<RefCell<TcpStack>>,
        rank: usize,
        peer_ips: Vec<IpAddr>,
    ) -> Rc<TcpTransport> {
        assert!(rank < peer_ips.len());
        let size = peer_ips.len();
        let t = Rc::new(TcpTransport {
            stack: stack.clone(),
            rank,
            peer_ips,
            conns: RefCell::new(vec![None; size]),
            handler: RefCell::new(None),
        });
        // Accept connections from every lower rank on a port that encodes
        // the *initiator's* rank, so we can attribute the connection.
        for src in 0..rank {
            let port = TCP_BASE_PORT + src as u16;
            let t2 = t.clone();
            stack.borrow_mut().listen(port, move |sim, conn| {
                t2.conns.borrow_mut()[src] = Some(conn);
                TcpTransport::read_loop(t2.clone(), sim, src, conn);
            });
        }
        // Connect to every higher rank.
        for dst in rank + 1..size {
            let port = TCP_BASE_PORT + rank as u16;
            let ip = t.peer_ips[dst];
            let t2 = t.clone();
            TcpStack::connect(stack, sim, ip, port, move |sim, conn| {
                t2.conns.borrow_mut()[dst] = Some(conn);
                TcpTransport::read_loop(t2.clone(), sim, dst, conn);
            });
        }
        t
    }

    /// Length-prefixed record reader: 4-byte big-endian length, then body.
    fn read_loop(t: Rc<TcpTransport>, sim: &mut Sim, src: usize, conn: ConnId) {
        let stack = t.stack.clone();
        TcpStack::recv(&stack.clone(), sim, conn, 4, move |sim, len_bytes| {
            let len = u32::from_be_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]])
                as usize;
            let t2 = t.clone();
            TcpStack::recv(&stack, sim, conn, len, move |sim, body| {
                sim.metrics.counter_inc_id(M_RECVS);
                sim.trace
                    .instant(sim.now(), Layer::Mpi, "mpi_recv", src as u64);
                if let Some(h) = t2.handler.borrow().clone() {
                    h(sim, src, body);
                }
                TcpTransport::read_loop(t2.clone(), sim, src, conn);
            });
        });
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.peer_ips.len()
    }

    fn send(&self, sim: &mut Sim, dst: usize, data: Bytes) {
        sim.metrics.counter_inc_id(M_SENDS);
        sim.metrics.observe_id(M_MSG_BYTES, data.len() as u64);
        sim.trace
            .instant(sim.now(), Layer::Mpi, "mpi_send", dst as u64);
        let conn = self.conns.borrow()[dst].expect("transport not ready");
        let mut framed = BytesMut::with_capacity(4 + data.len());
        framed.put_u32(data.len() as u32);
        framed.put_slice(&data);
        TcpStack::send(&self.stack, sim, conn, framed.freeze());
    }

    fn set_handler(&self, handler: MsgHandler) {
        *self.handler.borrow_mut() = Some(handler);
    }

    fn ready(&self) -> bool {
        self.conns
            .borrow()
            .iter()
            .enumerate()
            .all(|(r, c)| r == self.rank || c.is_some())
    }
}
