//! MPI-like point-to-point messaging.
//!
//! Blocking-style send/recv plus nonblocking isend/irecv with request
//! handles, tags, wildcard matching, the classic posted-receive /
//! unexpected-message queues, and the **eager/rendezvous** protocol split
//! real MPICH/LAM implementations use: small messages ship immediately
//! (possibly landing in the unexpected queue), large ones announce
//! themselves (RTS), wait for the receiver to match (CTS), then transfer —
//! bounding receiver-side buffering.
//!
//! Wire envelope (16 bytes, ahead of the payload):
//!
//! ```text
//! [ src rank u32 | tag i32 | payload len u32 | kind u8 + token u24 ]
//! ```
//!
//! `kind`: 0 = eager data, 1 = RTS, 2 = CTS, 3 = rendezvous data.

use crate::transport::Transport;
use bytes::{BufMut, Bytes, BytesMut};
use clic_os::Kernel;
use clic_sim::{Sim, SimDuration};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Wildcard source for [`Mpi::recv`].
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag for [`Mpi::recv`].
pub const ANY_TAG: i32 = -1;

/// Envelope prepended to every MPI message.
const ENVELOPE: usize = 16;

const KIND_EAGER: u8 = 0;
const KIND_RTS: u8 = 1;
const KIND_CTS: u8 = 2;
const KIND_RDATA: u8 = 3;

/// A matched, delivered message.
#[derive(Debug, Clone)]
pub struct MpiMsg {
    /// Source rank.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload.
    pub data: Bytes,
}

type RecvCont = Box<dyn FnOnce(&mut Sim, MpiMsg)>;

struct Posted {
    src: i32,
    tag: i32,
    cont: RecvCont,
}

/// Library CPU costs.
#[derive(Debug, Clone, Copy)]
pub struct MpiCosts {
    /// Send-side per message (envelope build, request bookkeeping).
    pub tx_per_message: SimDuration,
    /// Receive-side per message (matching, queue management).
    pub rx_per_message: SimDuration,
}

impl MpiCosts {
    /// LAM-era library overheads on the 1.5 GHz testbed.
    pub fn era_2002() -> MpiCosts {
        MpiCosts {
            tx_per_message: SimDuration::from_ns(1_500),
            rx_per_message: SimDuration::from_ns(1_500),
        }
    }
}

// ---------------------------------------------------------------------
// Requests (nonblocking operations)
// ---------------------------------------------------------------------

type ReqWaiter = Box<dyn FnOnce(&mut Sim, Option<MpiMsg>)>;

struct ReqInner {
    done: bool,
    msg: Option<MpiMsg>,
    waiter: Option<ReqWaiter>,
}

/// Handle of a nonblocking operation ([`Mpi::isend`] / [`Mpi::irecv`]).
#[derive(Clone)]
pub struct Request {
    inner: Rc<RefCell<ReqInner>>,
}

impl Request {
    fn new() -> Request {
        Request {
            inner: Rc::new(RefCell::new(ReqInner {
                done: false,
                msg: None,
                waiter: None,
            })),
        }
    }

    fn complete(&self, sim: &mut Sim, msg: Option<MpiMsg>) {
        let waiter = {
            let mut inner = self.inner.borrow_mut();
            debug_assert!(!inner.done, "request completed twice");
            inner.done = true;
            inner.msg = msg;
            inner.waiter.take()
        };
        if let Some(w) = waiter {
            let msg = self.inner.borrow_mut().msg.take();
            w(sim, msg);
        }
    }

    /// MPI_Test: has the operation completed?
    pub fn test(&self) -> bool {
        self.inner.borrow().done
    }

    /// MPI_Wait: run `cont` when the operation completes (immediately if it
    /// already has). Receives `Some(msg)` for irecv, `None` for isend.
    pub fn wait(&self, sim: &mut Sim, cont: impl FnOnce(&mut Sim, Option<MpiMsg>) + 'static) {
        let mut inner = self.inner.borrow_mut();
        if inner.done {
            let msg = inner.msg.take();
            drop(inner);
            cont(sim, msg);
        } else {
            assert!(inner.waiter.is_none(), "request already has a waiter");
            inner.waiter = Some(Box::new(cont));
        }
    }
}

// ---------------------------------------------------------------------
// The endpoint
// ---------------------------------------------------------------------

struct RtsEntry {
    src: usize,
    tag: i32,
    token: u32,
    arrival: u64,
}

struct MpiInner {
    posted: Vec<Posted>,
    unexpected: VecDeque<(u64, MpiMsg)>,
    pending_rts: Vec<RtsEntry>,
    next_arrival: u64,
    /// Receiver side: rendezvous transfers we have CTS'd, token → cont.
    awaiting_data: BTreeMap<u32, RecvCont>,
    /// Sender side: payloads waiting for CTS, token → (dst, tag, data,
    /// request to complete on hand-off).
    rndv_out: BTreeMap<u32, (usize, i32, Bytes, Request)>,
    next_token: u32,
    sends: u64,
    recvs: u64,
    unexpected_peak: usize,
    rendezvous_started: u64,
}

/// An MPI-like endpoint (one rank).
pub struct Mpi {
    kernel: Rc<RefCell<Kernel>>,
    transport: Rc<dyn Transport>,
    costs: MpiCosts,
    eager_limit: RefCell<usize>,
    inner: Rc<RefCell<MpiInner>>,
}

fn envelope(src: usize, tag: i32, len: usize, kind: u8, token: u32, body: &[u8]) -> Bytes {
    debug_assert!(token < (1 << 24));
    let mut framed = BytesMut::with_capacity(ENVELOPE + body.len());
    framed.put_u32(src as u32);
    framed.put_i32(tag);
    framed.put_u32(len as u32);
    framed.put_u32((u32::from(kind) << 24) | token);
    framed.put_slice(body);
    framed.freeze()
}

impl Mpi {
    /// Wrap a transport into an MPI endpoint; installs the transport
    /// handler.
    pub fn new(kernel: &Rc<RefCell<Kernel>>, transport: Rc<dyn Transport>) -> Rc<Mpi> {
        let mpi = Rc::new(Mpi {
            kernel: kernel.clone(),
            transport: transport.clone(),
            costs: MpiCosts::era_2002(),
            eager_limit: RefCell::new(64 * 1024),
            inner: Rc::new(RefCell::new(MpiInner {
                posted: Vec::new(),
                unexpected: VecDeque::new(),
                pending_rts: Vec::new(),
                next_arrival: 0,
                awaiting_data: BTreeMap::new(),
                rndv_out: BTreeMap::new(),
                next_token: 1,
                sends: 0,
                recvs: 0,
                unexpected_peak: 0,
                rendezvous_started: 0,
            })),
        });
        let m2 = mpi.clone();
        transport.set_handler(Rc::new(move |sim, src, data| {
            Mpi::on_message(&m2, sim, src, data);
        }));
        mpi
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Job size.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Messages sent / received so far.
    pub fn counts(&self) -> (u64, u64) {
        let i = self.inner.borrow();
        (i.sends, i.recvs)
    }

    /// High-water mark of the unexpected-message queue.
    pub fn unexpected_peak(&self) -> usize {
        self.inner.borrow().unexpected_peak
    }

    /// Rendezvous transfers initiated by this endpoint.
    pub fn rendezvous_started(&self) -> u64 {
        self.inner.borrow().rendezvous_started
    }

    /// Adjust the eager/rendezvous threshold (bytes).
    pub fn set_eager_limit(&self, bytes: usize) {
        *self.eager_limit.borrow_mut() = bytes;
    }

    /// Send `data` to `(dst, tag)`: standard mode — eager below the
    /// threshold, rendezvous above it. Fire-and-forget variant of
    /// [`Mpi::isend`].
    pub fn send(self: &Rc<Mpi>, sim: &mut Sim, dst: usize, tag: i32, data: Bytes) {
        let _ = self.isend(sim, dst, tag, data);
    }

    /// Nonblocking send: returns a [`Request`] that completes when the
    /// payload has been handed to the transport (eager) or when the
    /// receiver's CTS arrived and the payload left (rendezvous).
    pub fn isend(self: &Rc<Mpi>, sim: &mut Sim, dst: usize, tag: i32, data: Bytes) -> Request {
        assert!(tag >= 0, "negative tags are reserved");
        let request = Request::new();
        let src = self.rank();
        let eager = data.len() <= *self.eager_limit.borrow();
        self.inner.borrow_mut().sends += 1;
        if eager {
            let framed = envelope(src, tag, data.len(), KIND_EAGER, 0, &data);
            let transport = self.transport.clone();
            let req = request.clone();
            Kernel::cpu_task(&self.kernel, sim, self.costs.tx_per_message, move |sim| {
                transport.send(sim, dst, framed);
                req.complete(sim, None);
            });
        } else {
            // Rendezvous: announce, park the payload, wait for CTS.
            let token = {
                let mut inner = self.inner.borrow_mut();
                let t = inner.next_token;
                inner.next_token = (inner.next_token % 0x00ff_ffff) + 1;
                inner.rendezvous_started += 1;
                inner
                    .rndv_out
                    .insert(t, (dst, tag, data.clone(), request.clone()));
                t
            };
            let rts = envelope(src, tag, data.len(), KIND_RTS, token, &[]);
            let transport = self.transport.clone();
            Kernel::cpu_task(&self.kernel, sim, self.costs.tx_per_message, move |sim| {
                transport.send(sim, dst, rts);
            });
        }
        request
    }

    /// Receive a message matching `(src, tag)` (use [`ANY_SOURCE`] /
    /// [`ANY_TAG`] as wildcards); `cont` runs when it arrives.
    pub fn recv(
        self: &Rc<Mpi>,
        sim: &mut Sim,
        src: i32,
        tag: i32,
        cont: impl FnOnce(&mut Sim, MpiMsg) + 'static,
    ) {
        let mpi = self.clone();
        Kernel::cpu_task(&self.kernel, sim, self.costs.rx_per_message, move |sim| {
            mpi.inner.borrow_mut().recvs += 1;
            Mpi::match_or_post(&mpi, sim, src, tag, Box::new(cont));
        });
    }

    /// Nonblocking receive: the returned [`Request`] completes (with
    /// `Some(msg)`) when a matching message is delivered.
    pub fn irecv(self: &Rc<Mpi>, sim: &mut Sim, src: i32, tag: i32) -> Request {
        let request = Request::new();
        let req = request.clone();
        self.recv(sim, src, tag, move |sim, msg| req.complete(sim, Some(msg)));
        request
    }

    /// MPI_Sendrecv: send one message and receive one, concurrently;
    /// `cont` runs with the received message once both complete.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        self: &Rc<Mpi>,
        sim: &mut Sim,
        dst: usize,
        send_tag: i32,
        data: Bytes,
        src: i32,
        recv_tag: i32,
        cont: impl FnOnce(&mut Sim, MpiMsg) + 'static,
    ) {
        let send_req = self.isend(sim, dst, send_tag, data);
        let recv_req = self.irecv(sim, src, recv_tag);
        let recv2 = recv_req.clone();
        send_req.wait(sim, move |sim, _| {
            recv2.wait(sim, move |sim, msg| {
                cont(sim, msg.expect("irecv completes with a message"));
            });
        });
    }

    fn matches(want_src: i32, want_tag: i32, src: usize, tag: i32) -> bool {
        (want_src == ANY_SOURCE || want_src == src as i32)
            && (want_tag == ANY_TAG || want_tag == tag)
    }

    /// Match a receive against waiting messages — eager payloads and RTS
    /// announcements compete by **arrival order** (MPI's non-overtaking
    /// rule: of two matchable messages from the same sender, the earlier
    /// one matches first, whichever protocol carried it); otherwise post.
    fn match_or_post(mpi: &Rc<Mpi>, sim: &mut Sim, src: i32, tag: i32, cont: RecvCont) {
        enum Hit {
            Eager(MpiMsg),
            Rts { peer: usize, token: u32 },
            Miss,
        }
        let hit = {
            let mut inner = mpi.inner.borrow_mut();
            let eager = inner
                .unexpected
                .iter()
                .enumerate()
                .find(|(_, (_, m))| Self::matches(src, tag, m.src, m.tag))
                .map(|(i, (arr, _))| (i, *arr));
            let rts = inner
                .pending_rts
                .iter()
                .enumerate()
                .find(|(_, r)| Self::matches(src, tag, r.src, r.tag))
                .map(|(i, r)| (i, r.arrival));
            match (eager, rts) {
                (Some((ei, ea)), Some((_, ra))) if ea < ra => {
                    Hit::Eager(inner.unexpected.remove(ei).unwrap().1)
                }
                (Some(_), Some((ri, _))) => {
                    let r = inner.pending_rts.remove(ri);
                    Hit::Rts {
                        peer: r.src,
                        token: r.token,
                    }
                }
                (Some((ei, _)), None) => Hit::Eager(inner.unexpected.remove(ei).unwrap().1),
                (None, Some((ri, _))) => {
                    let r = inner.pending_rts.remove(ri);
                    Hit::Rts {
                        peer: r.src,
                        token: r.token,
                    }
                }
                (None, None) => Hit::Miss,
            }
        };
        match hit {
            Hit::Eager(msg) => cont(sim, msg),
            Hit::Rts { peer, token } => {
                mpi.inner.borrow_mut().awaiting_data.insert(token, cont);
                Self::send_cts(mpi, sim, peer, token);
            }
            Hit::Miss => mpi
                .inner
                .borrow_mut()
                .posted
                .push(Posted { src, tag, cont }),
        }
    }

    fn send_cts(mpi: &Rc<Mpi>, sim: &mut Sim, peer: usize, token: u32) {
        let cts = envelope(mpi.rank(), 0, 0, KIND_CTS, token, &[]);
        let transport = mpi.transport.clone();
        Kernel::cpu_task(&mpi.kernel, sim, mpi.costs.tx_per_message, move |sim| {
            transport.send(sim, peer, cts);
        });
    }

    fn on_message(mpi: &Rc<Mpi>, sim: &mut Sim, src: usize, data: Bytes) {
        let mpi2 = mpi.clone();
        Kernel::cpu_task(&mpi.kernel, sim, mpi.costs.rx_per_message, move |sim| {
            assert!(data.len() >= ENVELOPE, "runt MPI message");
            let env_src = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
            let tag = i32::from_be_bytes([data[4], data[5], data[6], data[7]]);
            let len = u32::from_be_bytes([data[8], data[9], data[10], data[11]]) as usize;
            let word4 = u32::from_be_bytes([data[12], data[13], data[14], data[15]]);
            let kind = (word4 >> 24) as u8;
            let token = word4 & 0x00ff_ffff;
            assert_eq!(env_src, src, "envelope/transport source mismatch");
            match kind {
                KIND_EAGER => {
                    assert_eq!(len, data.len() - ENVELOPE, "envelope length mismatch");
                    let msg = MpiMsg {
                        src,
                        tag,
                        data: data.slice(ENVELOPE..),
                    };
                    Self::deliver_or_queue(&mpi2, sim, msg);
                }
                KIND_RTS => {
                    // Announce: match now or remember for a later recv.
                    let matched = {
                        let mut inner = mpi2.inner.borrow_mut();
                        let pos = inner
                            .posted
                            .iter()
                            .position(|p| Self::matches(p.src, p.tag, src, tag));
                        match pos {
                            Some(i) => {
                                let posted = inner.posted.remove(i);
                                inner.awaiting_data.insert(token, posted.cont);
                                true
                            }
                            None => {
                                let arrival = inner.next_arrival;
                                inner.next_arrival += 1;
                                inner.pending_rts.push(RtsEntry {
                                    src,
                                    tag,
                                    token,
                                    arrival,
                                });
                                false
                            }
                        }
                    };
                    if matched {
                        Self::send_cts(&mpi2, sim, src, token);
                    }
                }
                KIND_CTS => {
                    let out = mpi2.inner.borrow_mut().rndv_out.remove(&token);
                    let Some((dst, tag, payload, request)) = out else {
                        return; // stale CTS
                    };
                    let framed =
                        envelope(mpi2.rank(), tag, payload.len(), KIND_RDATA, token, &payload);
                    let transport = mpi2.transport.clone();
                    let costs = mpi2.costs;
                    Kernel::cpu_task(&mpi2.kernel, sim, costs.tx_per_message, move |sim| {
                        transport.send(sim, dst, framed);
                        request.complete(sim, None);
                    });
                }
                KIND_RDATA => {
                    assert_eq!(len, data.len() - ENVELOPE, "envelope length mismatch");
                    let cont = mpi2.inner.borrow_mut().awaiting_data.remove(&token);
                    let Some(cont) = cont else {
                        return; // stale transfer
                    };
                    cont(
                        sim,
                        MpiMsg {
                            src,
                            tag,
                            data: data.slice(ENVELOPE..),
                        },
                    );
                }
                other => panic!("unknown MPI envelope kind {other}"),
            }
        });
    }

    fn deliver_or_queue(mpi: &Rc<Mpi>, sim: &mut Sim, msg: MpiMsg) {
        let cont = {
            let mut inner = mpi.inner.borrow_mut();
            let pos = inner
                .posted
                .iter()
                .position(|p| Self::matches(p.src, p.tag, msg.src, msg.tag));
            match pos {
                Some(i) => Some(inner.posted.remove(i).cont),
                None => {
                    let arrival = inner.next_arrival;
                    inner.next_arrival += 1;
                    inner.unexpected.push_back((arrival, msg.clone()));
                    let peak = inner.unexpected.len();
                    inner.unexpected_peak = inner.unexpected_peak.max(peak);
                    None
                }
            }
        };
        if let Some(cont) = cont {
            cont(sim, msg);
        }
    }
}
