//! # clic-mpi — MPI-like and PVM-like message layers
//!
//! The middleware of Figure 6. The paper evaluates four stacks: raw CLIC,
//! MPI over CLIC ("an efficient LAM-MPI implementation on top of CLIC has
//! been developed", §5), MPI over TCP/IP, and PVM over TCP/IP. We build an
//! MPI-like point-to-point layer over a [`transport::Transport`] trait with
//! CLIC and TCP backends, plus a PVM-like layer whose explicit pack/unpack
//! staging copies put its curve below MPI-TCP, as in the paper.
//!
//! * [`transport`] — the backend abstraction + `ClicTransport`,
//!   `TcpTransport`.
//! * [`p2p`] — ranks, tags, blocking send/recv with wildcard matching,
//!   posted-receive and unexpected-message queues.
//! * [`pvm`] — PVM-like endpoint with pack/unpack buffer semantics.
//! * [`collectives`] — barrier/broadcast/reduction built on p2p, plus a
//!   [`collectives::CollBackend`] switch that re-routes the same
//!   operations to the NIC-resident combining-tree engine for
//!   NIC-offloaded collectives at cluster scale.

#![allow(clippy::type_complexity)]
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod collectives;
pub mod p2p;
pub mod pvm;
pub mod transport;

pub use collectives::CollBackend;
pub use p2p::{Mpi, MpiMsg, ANY_SOURCE, ANY_TAG};
pub use pvm::Pvm;
pub use transport::{ClicTransport, TcpTransport, Transport};
