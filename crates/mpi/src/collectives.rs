//! Collective operations over the p2p layer.
//!
//! Host-based algorithms are linear — the paper's evaluation is
//! point-to-point, so these exist for the example applications and tests
//! (and to exercise the broadcast capability §5 advertises). For cluster
//! scale-out the same operations can instead be dispatched to the
//! NIC-resident combining-tree engine via [`CollBackend`]: the host posts
//! one doorbell and the NICs complete the collective in firmware.

use crate::p2p::{Mpi, ANY_TAG};
use bytes::Bytes;
use clic_hw::Nic;
use clic_sim::Sim;
use std::cell::RefCell;
use std::rc::Rc;

/// Tags reserved by the collectives (user code must use tags below this).
pub const RESERVED_TAG_BASE: i32 = 1 << 24;
const TAG_BARRIER_IN: i32 = RESERVED_TAG_BASE;
const TAG_BARRIER_OUT: i32 = RESERVED_TAG_BASE + 1;
const TAG_BCAST: i32 = RESERVED_TAG_BASE + 2;
const TAG_GATHER: i32 = RESERVED_TAG_BASE + 3;
const TAG_SCATTER: i32 = RESERVED_TAG_BASE + 4;
const TAG_REDUCE_IN: i32 = RESERVED_TAG_BASE + 5;
const TAG_REDUCE_OUT: i32 = RESERVED_TAG_BASE + 6;

/// Linear barrier: everyone reports to rank 0, rank 0 releases everyone.
/// Every rank must call this; `done` fires locally when released.
pub fn barrier(mpi: &Rc<Mpi>, sim: &mut Sim, done: impl FnOnce(&mut Sim) + 'static) {
    let size = mpi.size();
    if size == 1 {
        done(sim);
        return;
    }
    if mpi.rank() == 0 {
        // Gather size-1 notifications, then release.
        fn gather(mpi: Rc<Mpi>, sim: &mut Sim, left: usize, done: Box<dyn FnOnce(&mut Sim)>) {
            if left == 0 {
                let size = mpi.size();
                for r in 1..size {
                    mpi.send(sim, r, TAG_BARRIER_OUT, Bytes::new());
                }
                done(sim);
                return;
            }
            let m2 = mpi.clone();
            mpi.clone().recv(
                sim,
                crate::p2p::ANY_SOURCE,
                TAG_BARRIER_IN,
                move |sim, _| {
                    gather(m2, sim, left - 1, done);
                },
            );
        }
        gather(mpi.clone(), sim, size - 1, Box::new(done));
    } else {
        mpi.send(sim, 0, TAG_BARRIER_IN, Bytes::new());
        mpi.recv(sim, 0, TAG_BARRIER_OUT, move |sim, _| done(sim));
    }
}

/// Linear broadcast from `root`. The root passes `Some(data)`; the others
/// pass `None` and get the payload in `done`.
pub fn bcast(
    mpi: &Rc<Mpi>,
    sim: &mut Sim,
    root: usize,
    data: Option<Bytes>,
    done: impl FnOnce(&mut Sim, Bytes) + 'static,
) {
    if mpi.rank() == root {
        let data = data.expect("root must supply the broadcast payload");
        for r in 0..mpi.size() {
            if r != root {
                mpi.send(sim, r, TAG_BCAST, data.clone());
            }
        }
        done(sim, data);
    } else {
        assert!(data.is_none(), "non-root must not supply data");
        mpi.recv(sim, root as i32, TAG_BCAST, move |sim, msg| {
            done(sim, msg.data)
        });
    }
}

/// Linear gather to `root`: every rank contributes `data`; the root's
/// `done` gets the contributions indexed by rank; other ranks' `done` gets
/// an empty vector.
pub fn gather(
    mpi: &Rc<Mpi>,
    sim: &mut Sim,
    root: usize,
    data: Bytes,
    done: impl FnOnce(&mut Sim, Vec<Bytes>) + 'static,
) {
    let size = mpi.size();
    if mpi.rank() == root {
        struct St {
            slots: Vec<Option<Bytes>>,
            missing: usize,
        }
        let st = Rc::new(std::cell::RefCell::new(St {
            slots: vec![None; size],
            missing: size - 1,
        }));
        st.borrow_mut().slots[root] = Some(data);
        if size == 1 {
            let slots = st
                .borrow_mut()
                .slots
                .drain(..)
                .map(Option::unwrap)
                .collect();
            done(sim, slots);
            return;
        }
        let done = Rc::new(std::cell::RefCell::new(Some(
            Box::new(done) as Box<dyn FnOnce(&mut Sim, Vec<Bytes>)>
        )));
        for _ in 1..size {
            let st2 = st.clone();
            let done2 = done.clone();
            mpi.recv(sim, crate::p2p::ANY_SOURCE, TAG_GATHER, move |sim, msg| {
                {
                    let mut s = st2.borrow_mut();
                    assert!(s.slots[msg.src].is_none(), "duplicate gather contribution");
                    s.slots[msg.src] = Some(msg.data);
                    s.missing -= 1;
                }
                if st2.borrow().missing == 0 {
                    let slots = st2
                        .borrow_mut()
                        .slots
                        .drain(..)
                        .map(Option::unwrap)
                        .collect();
                    (done2.borrow_mut().take().unwrap())(sim, slots);
                }
            });
        }
    } else {
        mpi.send(sim, root, TAG_GATHER, data);
        done(sim, Vec::new());
    }
}

/// Linear scatter from `root`: the root supplies one payload per rank;
/// every rank's `done` receives its own piece.
pub fn scatter(
    mpi: &Rc<Mpi>,
    sim: &mut Sim,
    root: usize,
    pieces: Option<Vec<Bytes>>,
    done: impl FnOnce(&mut Sim, Bytes) + 'static,
) {
    if mpi.rank() == root {
        let pieces = pieces.expect("root must supply the pieces");
        assert_eq!(pieces.len(), mpi.size(), "one piece per rank");
        let mine = pieces[root].clone();
        for (r, piece) in pieces.into_iter().enumerate() {
            if r != root {
                mpi.send(sim, r, TAG_SCATTER, piece);
            }
        }
        done(sim, mine);
    } else {
        assert!(pieces.is_none(), "non-root must not supply pieces");
        mpi.recv(sim, root as i32, TAG_SCATTER, move |sim, msg| {
            done(sim, msg.data)
        });
    }
}

/// All-reduce of a u64 by summation: every rank contributes `value` and
/// receives the global sum (gather-to-0 + broadcast, linear).
pub fn allreduce_sum(
    mpi: &Rc<Mpi>,
    sim: &mut Sim,
    value: u64,
    done: impl FnOnce(&mut Sim, u64) + 'static,
) {
    let size = mpi.size();
    if mpi.rank() == 0 {
        let acc = Rc::new(std::cell::RefCell::new((value, size - 1)));
        if size == 1 {
            done(sim, value);
            return;
        }
        let done = Rc::new(std::cell::RefCell::new(Some(
            Box::new(done) as Box<dyn FnOnce(&mut Sim, u64)>
        )));
        for _ in 1..size {
            let acc2 = acc.clone();
            let done2 = done.clone();
            let mpi2 = mpi.clone();
            mpi.recv(
                sim,
                crate::p2p::ANY_SOURCE,
                TAG_REDUCE_IN,
                move |sim, msg| {
                    let v = u64::from_be_bytes(msg.data[..8].try_into().unwrap());
                    let finished = {
                        let mut a = acc2.borrow_mut();
                        a.0 = a.0.wrapping_add(v);
                        a.1 -= 1;
                        a.1 == 0
                    };
                    if finished {
                        let total = acc2.borrow().0;
                        for r in 1..mpi2.size() {
                            mpi2.send(
                                sim,
                                r,
                                TAG_REDUCE_OUT,
                                Bytes::copy_from_slice(&total.to_be_bytes()),
                            );
                        }
                        (done2.borrow_mut().take().unwrap())(sim, total);
                    }
                },
            );
        }
    } else {
        mpi.send(
            sim,
            0,
            TAG_REDUCE_IN,
            Bytes::copy_from_slice(&value.to_be_bytes()),
        );
        mpi.recv(sim, 0, TAG_REDUCE_OUT, move |sim, msg| {
            let total = u64::from_be_bytes(msg.data[..8].try_into().unwrap());
            done(sim, total);
        });
    }
}

/// Where a collective operation runs.
///
/// `Host` is the classic implementation: linear gather/release message
/// patterns over the MPI point-to-point layer, every message crossing the
/// full host stack (syscall, kernel, NIC rings, interrupts). `NicOffload`
/// hands the operation to the NIC's firmware combining tree
/// ([`clic_hw::coll`]): the host posts a single doorbell and is next
/// involved when the NIC reports completion — no per-message interrupts,
/// no RX-ring occupancy, and a release phase that is one Ethernet
/// multicast.
///
/// ```
/// use clic_ethernet::{Link, LinkEnd, MacAddr, Switch};
/// use clic_hw::coll::CollConfig;
/// use clic_hw::{Nic, NicConfig, PciBus};
/// use clic_mpi::collectives::{barrier_on, CollBackend};
/// use clic_sim::Sim;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(3);
/// let sw = Switch::gigabit_default();
/// let mut nics = Vec::new();
/// for node in 0..4u32 {
///     let link = Link::gigabit();
///     Switch::attach_port(&sw, link.clone(), LinkEnd::A);
///     let nic = Nic::new(
///         MacAddr::for_node(node, 0),
///         NicConfig::gigabit_standard(),
///         PciBus::pci_33mhz_32bit(),
///         link,
///         LinkEnd::B,
///     );
///     Nic::attach_to_link(&nic);
///     nics.push(nic);
/// }
/// let members: Vec<_> = nics.iter().map(|n| n.borrow().mac()).collect();
/// let backends: Vec<CollBackend> = nics
///     .iter()
///     .enumerate()
///     .map(|(rank, nic)| {
///         Nic::enable_collectives(nic, CollConfig::new(2, members.clone(), rank));
///         CollBackend::NicOffload(nic.clone())
///     })
///     .collect();
/// let done = Rc::new(RefCell::new(0u32));
/// for b in &backends {
///     let d = done.clone();
///     barrier_on(b, &mut sim, move |_sim| *d.borrow_mut() += 1);
/// }
/// sim.run();
/// assert_eq!(*done.borrow(), 4);
/// ```
pub enum CollBackend {
    /// Linear host-based algorithms over MPI point-to-point.
    Host(Rc<Mpi>),
    /// NIC-resident combining tree; the NIC must have been armed with
    /// [`Nic::enable_collectives`] for the same group membership on every
    /// rank.
    NicOffload(Rc<RefCell<Nic>>),
}

impl CollBackend {
    /// Short name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            CollBackend::Host(_) => "host",
            CollBackend::NicOffload(_) => "nic",
        }
    }
}

/// [`barrier`] on the chosen backend.
pub fn barrier_on(backend: &CollBackend, sim: &mut Sim, done: impl FnOnce(&mut Sim) + 'static) {
    match backend {
        CollBackend::Host(mpi) => barrier(mpi, sim, done),
        CollBackend::NicOffload(nic) => Nic::coll_barrier(nic, sim, done),
    }
}

/// [`bcast`] on the chosen backend.
pub fn bcast_on(
    backend: &CollBackend,
    sim: &mut Sim,
    root: usize,
    data: Option<Bytes>,
    done: impl FnOnce(&mut Sim, Bytes) + 'static,
) {
    match backend {
        CollBackend::Host(mpi) => bcast(mpi, sim, root, data, done),
        CollBackend::NicOffload(nic) => Nic::coll_bcast(nic, sim, root, data, done),
    }
}

/// [`allreduce_sum`] on the chosen backend.
pub fn allreduce_sum_on(
    backend: &CollBackend,
    sim: &mut Sim,
    value: u64,
    done: impl FnOnce(&mut Sim, u64) + 'static,
) {
    match backend {
        CollBackend::Host(mpi) => allreduce_sum(mpi, sim, value, done),
        CollBackend::NicOffload(nic) => Nic::coll_allreduce(nic, sim, value, done),
    }
}

/// Guard: user tags must stay below the reserved range.
pub fn assert_user_tag(tag: i32) {
    assert!(
        (0..RESERVED_TAG_BASE).contains(&tag) || tag == ANY_TAG,
        "tag {tag} collides with the reserved collective range"
    );
}
