//! PVM-like message layer.
//!
//! PVM's API packs typed data into a staging buffer (`pvm_pkint`, ...)
//! before `pvm_send`, and unpacks after `pvm_recv`: an extra CPU copy on
//! each side plus heavier per-message bookkeeping than MPI. That is why
//! PVM's curve sits below MPI-on-TCP in Figure 6. We model exactly that:
//! same transport, one extra staged copy per side, larger per-message cost.

use crate::transport::Transport;
use bytes::Bytes;
use clic_os::Kernel;
use clic_sim::{Sim, SimDuration};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A received PVM message.
#[derive(Debug, Clone)]
pub struct PvmMsg {
    /// Source rank ("tid").
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Unpacked payload.
    pub data: Bytes,
}

struct PvmInner {
    pending: VecDeque<PvmMsg>,
    waiting: VecDeque<(i32, i32, Box<dyn FnOnce(&mut Sim, PvmMsg)>)>,
    pack_buf: Option<Bytes>,
}

/// A PVM-like endpoint.
pub struct Pvm {
    kernel: Rc<RefCell<Kernel>>,
    transport: Rc<dyn Transport>,
    per_message: SimDuration,
    inner: Rc<RefCell<PvmInner>>,
}

impl Pvm {
    /// Wrap a transport; installs the delivery handler.
    pub fn new(kernel: &Rc<RefCell<Kernel>>, transport: Rc<dyn Transport>) -> Rc<Pvm> {
        let pvm = Rc::new(Pvm {
            kernel: kernel.clone(),
            transport: transport.clone(),
            per_message: SimDuration::from_ns(3_000),
            inner: Rc::new(RefCell::new(PvmInner {
                pending: VecDeque::new(),
                waiting: VecDeque::new(),
                pack_buf: None,
            })),
        });
        let p2 = pvm.clone();
        transport.set_handler(Rc::new(move |sim, src, data| {
            Pvm::on_message(&p2, sim, src, data);
        }));
        pvm
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// `pvm_initsend` + `pvm_pk*`: stage `data` into the pack buffer,
    /// charging the pack copy; `done` runs when packing completes.
    pub fn pack(self: &Rc<Pvm>, sim: &mut Sim, data: Bytes, done: impl FnOnce(&mut Sim) + 'static) {
        let cost = self
            .kernel
            .borrow()
            .costs
            .copy
            .cost_observed(sim, data.len());
        let pvm = self.clone();
        Kernel::cpu_task(&self.kernel, sim, cost, move |sim| {
            pvm.inner.borrow_mut().pack_buf = Some(Bytes::copy_from_slice(&data));
            done(sim);
        });
    }

    /// `pvm_send`: ship the packed buffer to `(dst, tag)`.
    pub fn send(self: &Rc<Pvm>, sim: &mut Sim, dst: usize, tag: i32) {
        let data = self
            .inner
            .borrow_mut()
            .pack_buf
            .take()
            .expect("pvm_send without a packed buffer");
        let mut framed = Vec::with_capacity(8 + data.len());
        framed.extend_from_slice(&(self.rank() as u32).to_be_bytes());
        framed.extend_from_slice(&tag.to_be_bytes());
        framed.extend_from_slice(&data);
        let framed = Bytes::from(framed);
        let transport = self.transport.clone();
        Kernel::cpu_task(&self.kernel, sim, self.per_message, move |sim| {
            transport.send(sim, dst, framed);
        });
    }

    /// `pvm_recv` + `pvm_upk*`: wait for a message matching `(src, tag)`
    /// (−1 wildcards), charging the unpack copy before `cont`.
    pub fn recv(
        self: &Rc<Pvm>,
        sim: &mut Sim,
        src: i32,
        tag: i32,
        cont: impl FnOnce(&mut Sim, PvmMsg) + 'static,
    ) {
        let pvm = self.clone();
        Kernel::cpu_task(&self.kernel, sim, self.per_message, move |sim| {
            let hit = {
                let mut inner = pvm.inner.borrow_mut();
                inner
                    .pending
                    .iter()
                    .position(|m| (src == -1 || src == m.src as i32) && (tag == -1 || tag == m.tag))
                    .and_then(|i| inner.pending.remove(i))
            };
            match hit {
                Some(msg) => Pvm::unpack_and_deliver(&pvm, sim, msg, Box::new(cont)),
                None => pvm
                    .inner
                    .borrow_mut()
                    .waiting
                    .push_back((src, tag, Box::new(cont))),
            }
        });
    }

    fn unpack_and_deliver(
        pvm: &Rc<Pvm>,
        sim: &mut Sim,
        msg: PvmMsg,
        cont: Box<dyn FnOnce(&mut Sim, PvmMsg)>,
    ) {
        let cost = pvm
            .kernel
            .borrow()
            .costs
            .copy
            .cost_observed(sim, msg.data.len());
        Kernel::cpu_task(&pvm.kernel, sim, cost, move |sim| cont(sim, msg));
    }

    fn on_message(pvm: &Rc<Pvm>, sim: &mut Sim, src: usize, data: Bytes) {
        let pvm2 = pvm.clone();
        Kernel::cpu_task(&pvm.kernel, sim, pvm.per_message, move |sim| {
            assert!(data.len() >= 8, "runt PVM message");
            let env_src = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
            let tag = i32::from_be_bytes([data[4], data[5], data[6], data[7]]);
            assert_eq!(env_src, src);
            let msg = PvmMsg {
                src,
                tag,
                data: data.slice(8..),
            };
            let waiter = {
                let mut inner = pvm2.inner.borrow_mut();
                let pos = inner.waiting.iter().position(|(s, t, _)| {
                    (*s == -1 || *s == msg.src as i32) && (*t == -1 || *t == msg.tag)
                });
                match pos {
                    Some(i) => inner.waiting.remove(i).map(|(_, _, c)| c),
                    None => {
                        inner.pending.push_back(msg.clone());
                        None
                    }
                }
            };
            if let Some(cont) = waiter {
                Pvm::unpack_and_deliver(&pvm2, sim, msg, cont);
            }
        });
    }
}
