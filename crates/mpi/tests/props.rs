//! Property-based tests of the MPI matching semantics over an in-memory
//! loopback transport (no network model involved — pure library logic).

use bytes::Bytes;
use clic_mpi::transport::{MsgHandler, Transport};
use clic_mpi::{Mpi, ANY_SOURCE, ANY_TAG};
use clic_os::{Kernel, OsCosts};
use clic_sim::{Sim, SimDuration};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Two ranks connected by direct event-queue delivery with a tiny fixed
/// latency.
struct PairEnd {
    rank: usize,
    peer: RefCell<Option<Rc<PairEnd>>>,
    handler: RefCell<Option<MsgHandler>>,
}

impl PairEnd {
    fn pair() -> (Rc<PairEnd>, Rc<PairEnd>) {
        let a = Rc::new(PairEnd {
            rank: 0,
            peer: RefCell::new(None),
            handler: RefCell::new(None),
        });
        let b = Rc::new(PairEnd {
            rank: 1,
            peer: RefCell::new(None),
            handler: RefCell::new(None),
        });
        *a.peer.borrow_mut() = Some(b.clone());
        *b.peer.borrow_mut() = Some(a.clone());
        (a, b)
    }
}

impl Transport for PairEnd {
    fn rank(&self) -> usize {
        self.rank
    }
    fn size(&self) -> usize {
        2
    }
    fn send(&self, sim: &mut Sim, dst: usize, data: Bytes) {
        let peer = self.peer.borrow().clone().unwrap();
        assert_eq!(dst, peer.rank);
        let src = self.rank;
        sim.schedule_in(SimDuration::from_us(1), move |sim| {
            if let Some(h) = peer.handler.borrow().clone() {
                h(sim, src, data);
            }
        });
    }
    fn set_handler(&self, handler: MsgHandler) {
        *self.handler.borrow_mut() = Some(handler);
    }
    fn ready(&self) -> bool {
        true
    }
}

fn mk_pair() -> (Rc<Mpi>, Rc<Mpi>, Sim) {
    let sim = Sim::new(0);
    let k0 = Kernel::new(0, OsCosts::era_2002());
    let k1 = Kernel::new(1, OsCosts::era_2002());
    let (t0, t1) = PairEnd::pair();
    let m0 = Mpi::new(&k0, t0 as Rc<dyn Transport>);
    let m1 = Mpi::new(&k1, t1 as Rc<dyn Transport>);
    (m0, m1, sim)
}

proptest! {
    /// Every sent message is delivered to exactly one matching receive,
    /// and same-(src,tag) messages arrive in send order — for arbitrary
    /// tag sequences, recv interleavings, and eager limits (forcing a mix
    /// of eager and rendezvous transfers).
    #[test]
    fn exactly_once_matching(
        tags in proptest::collection::vec(0i32..4, 1..30),
        recv_first in any::<bool>(),
        wildcard in any::<bool>(),
        eager_limit in prop_oneof![Just(1usize), Just(64), Just(1 << 20)],
        msg_len in 1usize..300,
    ) {
        let (m0, m1, mut sim) = mk_pair();
        m0.set_eager_limit(eager_limit);
        let got: Rc<RefCell<Vec<(i32, Bytes)>>> = Rc::new(RefCell::new(Vec::new()));

        let post_recvs = |sim: &mut Sim| {
            for &tag in &tags {
                let g = got.clone();
                let want_tag = if wildcard { ANY_TAG } else { tag };
                m1.recv(sim, ANY_SOURCE, want_tag, move |_s, m| {
                    g.borrow_mut().push((m.tag, m.data));
                });
            }
        };
        let post_sends = |sim: &mut Sim| {
            for (i, &tag) in tags.iter().enumerate() {
                // Payload encodes (tag, index) so ordering can be checked.
                let mut body = vec![(i % 251) as u8; msg_len];
                body[0] = tag as u8;
                m0.send(sim, 1, tag, Bytes::from(body));
            }
        };
        if recv_first {
            post_recvs(&mut sim);
            post_sends(&mut sim);
        } else {
            post_sends(&mut sim);
            sim.run(); // messages land unexpected / as pending RTS
            post_recvs(&mut sim);
        }
        sim.set_event_limit(5_000_000);
        sim.run();

        let got = got.borrow();
        prop_assert_eq!(got.len(), tags.len(), "every message delivered once");
        // Payload tag byte always matches the envelope tag.
        for (tag, data) in got.iter() {
            prop_assert_eq!(data[0] as i32, *tag);
            prop_assert_eq!(data.len(), msg_len);
        }
        // Per-tag delivery preserves send order (MPI non-overtaking).
        for t in 0..4i32 {
            let sent: Vec<usize> = tags
                .iter()
                .enumerate()
                .filter(|(_, &x)| x == t)
                .map(|(i, _)| i % 251)
                .collect();
            let recvd: Vec<usize> = got
                .iter()
                .filter(|(tag, _)| *tag == t)
                .map(|(_, d)| d[1.min(d.len() - 1)] as usize)
                .collect();
            // When msg_len == 1 the index byte is overwritten by the tag
            // byte; skip the order check in that degenerate case.
            if msg_len > 1 {
                let sent_idx: Vec<u8> = tags
                    .iter()
                    .enumerate()
                    .filter(|(_, &x)| x == t)
                    .map(|(i, _)| (i % 251) as u8)
                    .collect();
                let recvd_idx: Vec<u8> = got
                    .iter()
                    .filter(|(tag, _)| *tag == t)
                    .map(|(_, d)| d[1])
                    .collect();
                prop_assert_eq!(recvd_idx, sent_idx, "non-overtaking per tag");
            }
            let _ = (sent, recvd);
        }
    }

    /// isend/irecv requests complete exactly once and wait() observes the
    /// delivered payload.
    #[test]
    fn request_completion(n in 1usize..20, eager in any::<bool>()) {
        let (m0, m1, mut sim) = mk_pair();
        m0.set_eager_limit(if eager { 1 << 20 } else { 1 });
        let mut recv_reqs = Vec::new();
        let mut send_reqs = Vec::new();
        for i in 0..n {
            recv_reqs.push(m1.irecv(&mut sim, 0, i as i32));
        }
        for i in 0..n {
            send_reqs.push(m0.isend(&mut sim, 1, i as i32, Bytes::from(vec![i as u8; 64])));
        }
        let done: Rc<RefCell<usize>> = Rc::new(RefCell::new(0));
        for (i, r) in recv_reqs.iter().enumerate() {
            let d = done.clone();
            r.wait(&mut sim, move |_s, msg| {
                let msg = msg.unwrap();
                assert_eq!(msg.tag, i as i32);
                assert!(msg.data.iter().all(|&b| b == i as u8));
                *d.borrow_mut() += 1;
            });
        }
        sim.run();
        prop_assert_eq!(*done.borrow(), n);
        prop_assert!(send_reqs.iter().all(|r| r.test()));
        prop_assert!(recv_reqs.iter().all(|r| r.test()));
    }
}

/// The payload byte-0 overwrite above means tag 0..=3 fits u8; keep the
/// strategy ranges in sync with that assumption.
#[test]
fn strategy_assumptions_hold() {
    assert!(4 <= u8::MAX as i32);
}

proptest! {
    /// Mixed eager/rendezvous traffic on the SAME tag still matches in
    /// send order (the arrival-ordered matching across the unexpected and
    /// pending-RTS queues).
    #[test]
    fn non_overtaking_across_protocols(pattern in proptest::collection::vec(any::<bool>(), 2..16)) {
        let (m0, m1, mut sim) = mk_pair();
        m0.set_eager_limit(64); // small => eager, large => rendezvous
        // All messages share tag 1; payload[0] is the send index.
        for (i, &big) in pattern.iter().enumerate() {
            let len = if big { 500 } else { 8 };
            let mut body = vec![0u8; len];
            body[0] = i as u8;
            m0.send(&mut sim, 1, 1, Bytes::from(body));
        }
        sim.run(); // everything lands unmatched at rank 1
        // MPI's non-overtaking rule is about MATCHING: the k-th posted
        // receive must match the k-th sent message on this (src, tag),
        // regardless of which protocol carried it or when the payload
        // completes.
        let pairs: Rc<RefCell<Vec<(u8, u8)>>> = Rc::new(RefCell::new(Vec::new()));
        for k in 0..pattern.len() as u8 {
            let p = pairs.clone();
            m1.recv(&mut sim, 0, 1, move |_s, m| p.borrow_mut().push((k, m.data[0])));
        }
        sim.run();
        let got = pairs.borrow();
        prop_assert_eq!(got.len(), pattern.len());
        for &(recv_idx, msg_idx) in got.iter() {
            prop_assert_eq!(recv_idx, msg_idx, "receive k must match message k");
        }
    }
}
