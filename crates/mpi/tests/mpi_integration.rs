//! End-to-end tests of the MPI-like and PVM-like layers over both
//! transports (CLIC and TCP), on full simulated nodes.

#![allow(clippy::type_complexity)]

use bytes::Bytes;
use clic_core::{ClicConfig, ClicModule};
use clic_ethernet::{Link, LinkEnd, MacAddr, Switch};
use clic_hw::coll::CollConfig;
use clic_hw::{Nic, NicConfig, PciBus};
use clic_mpi::collectives;
use clic_mpi::collectives::CollBackend;
use clic_mpi::transport::{ClicTransport, TcpTransport, Transport};
use clic_mpi::{Mpi, Pvm, ANY_SOURCE, ANY_TAG};
use clic_os::{Kernel, OsCosts};
use clic_sim::{Sim, SimTime};
use clic_tcpip::{IpAddr, IpLayer, TcpIpCosts, TcpStack};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

struct Node {
    kernel: Rc<RefCell<Kernel>>,
    clic: Rc<RefCell<ClicModule>>,
    tcp: Rc<RefCell<TcpStack>>,
    nic: Rc<RefCell<Nic>>,
}

/// Build `n` full nodes on a switch, each with CLIC and TCP installed.
fn mk_cluster(sim: &mut Sim, n: usize) -> Vec<Node> {
    let switch = Switch::gigabit_default();
    let mut nodes = Vec::new();
    for id in 0..n as u32 {
        let link = Link::gigabit();
        Switch::attach_port(&switch, link.clone(), LinkEnd::B);
        let kernel = Kernel::new(id, OsCosts::era_2002());
        let nic = Nic::new(
            MacAddr::for_node(id, 0),
            NicConfig::gigabit_standard(),
            PciBus::pci_33mhz_32bit(),
            link,
            LinkEnd::A,
        );
        Nic::attach_to_link(&nic);
        let dev = Kernel::add_device(&kernel, nic.clone());
        let clic = ClicModule::install(&kernel, vec![dev], ClicConfig::paper_default());
        let mut neighbors = BTreeMap::new();
        for peer in 0..n as u32 {
            neighbors.insert(IpAddr::for_node(peer), MacAddr::for_node(peer, 0));
        }
        let ip = IpLayer::install(
            &kernel,
            dev,
            IpAddr::for_node(id),
            neighbors,
            TcpIpCosts::era_2002(),
        );
        let tcp = TcpStack::install(&kernel, &ip);
        nodes.push(Node {
            kernel,
            clic,
            tcp,
            nic,
        });
    }
    let _ = sim;
    nodes
}

fn mpi_over_clic(sim: &mut Sim, nodes: &[Node]) -> Vec<Rc<Mpi>> {
    let peers: Vec<MacAddr> = (0..nodes.len() as u32)
        .map(|id| MacAddr::for_node(id, 0))
        .collect();
    nodes
        .iter()
        .enumerate()
        .map(|(rank, node)| {
            let pid = node.kernel.borrow_mut().processes.spawn("mpi");
            let t = ClicTransport::new(sim, &node.clic, pid, rank, peers.clone());
            Mpi::new(&node.kernel, t)
        })
        .collect()
}

fn mpi_over_tcp(sim: &mut Sim, nodes: &[Node]) -> Vec<Rc<Mpi>> {
    let ips: Vec<IpAddr> = (0..nodes.len() as u32).map(IpAddr::for_node).collect();
    let transports: Vec<Rc<TcpTransport>> = nodes
        .iter()
        .enumerate()
        .map(|(rank, node)| TcpTransport::new(sim, &node.tcp, rank, ips.clone()))
        .collect();
    sim.run();
    assert!(
        transports.iter().all(|t| t.ready()),
        "TCP mesh must establish"
    );
    nodes
        .iter()
        .zip(&transports)
        .map(|(node, t)| Mpi::new(&node.kernel, t.clone() as Rc<dyn Transport>))
        .collect()
}

fn payload(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<_>>())
}

#[test]
fn clic_backend_send_recv() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let got: Rc<RefCell<Option<(usize, i32, Bytes)>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    mpis[1].recv(&mut sim, 0, 7, move |_s, m| {
        *g.borrow_mut() = Some((m.src, m.tag, m.data))
    });
    let data = payload(5000);
    mpis[0].send(&mut sim, 1, 7, data.clone());
    sim.run();
    let got = got.borrow();
    let (src, tag, bytes) = got.as_ref().unwrap();
    assert_eq!((*src, *tag), (0, 7));
    assert_eq!(bytes, &data);
}

#[test]
fn tcp_backend_send_recv() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let mpis = mpi_over_tcp(&mut sim, &nodes);
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    mpis[0].recv(&mut sim, 1, 3, move |_s, m| *g.borrow_mut() = Some(m.data));
    let data = payload(40_000);
    mpis[1].send(&mut sim, 0, 3, data.clone());
    sim.run();
    assert_eq!(got.borrow().as_ref().unwrap(), &data);
}

#[test]
fn wildcard_matching() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 3);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let order: Rc<RefCell<Vec<(usize, i32)>>> = Rc::new(RefCell::new(Vec::new()));
    for _ in 0..2 {
        let o = order.clone();
        mpis[0].recv(&mut sim, ANY_SOURCE, ANY_TAG, move |_s, m| {
            o.borrow_mut().push((m.src, m.tag))
        });
    }
    mpis[1].send(&mut sim, 0, 11, Bytes::from_static(b"one"));
    mpis[2].send(&mut sim, 0, 22, Bytes::from_static(b"two"));
    sim.run();
    let got = order.borrow();
    assert_eq!(got.len(), 2);
    assert!(got.contains(&(1, 11)));
    assert!(got.contains(&(2, 22)));
}

#[test]
fn selective_tag_matching_with_unexpected_queue() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    // Send tag 1 then tag 2; receive tag 2 first, then tag 1.
    mpis[0].send(&mut sim, 1, 1, Bytes::from_static(b"first-sent"));
    mpis[0].send(&mut sim, 1, 2, Bytes::from_static(b"second-sent"));
    sim.run();
    let order: Rc<RefCell<Vec<i32>>> = Rc::new(RefCell::new(Vec::new()));
    let o = order.clone();
    mpis[1].recv(&mut sim, ANY_SOURCE, 2, move |_s, m| {
        o.borrow_mut().push(m.tag)
    });
    sim.run();
    let o = order.clone();
    mpis[1].recv(&mut sim, ANY_SOURCE, 1, move |_s, m| {
        o.borrow_mut().push(m.tag)
    });
    sim.run();
    assert_eq!(*order.borrow(), vec![2, 1]);
    assert!(mpis[1].unexpected_peak() >= 1);
}

#[test]
fn pingpong_roundtrip_over_clic() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let done: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    // Rank 1 echoes.
    let m1 = mpis[1].clone();
    mpis[1].recv(&mut sim, 0, 5, move |sim, m| {
        m1.send(sim, 0, 6, m.data);
    });
    // Rank 0 sends and waits for the echo.
    let d = done.clone();
    mpis[0].recv(&mut sim, 1, 6, move |sim, _| {
        *d.borrow_mut() = Some(sim.now());
    });
    mpis[0].send(&mut sim, 1, 5, payload(1000));
    sim.run();
    let rtt = done.borrow().unwrap();
    assert!(
        rtt < SimTime::from_us(300),
        "1000-byte MPI round trip {rtt} too slow"
    );
}

#[test]
fn barrier_synchronizes_all_ranks() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 4);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let released: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    for mpi in &mpis {
        let r = released.clone();
        let rank = mpi.rank();
        collectives::barrier(mpi, &mut sim, move |_s| r.borrow_mut().push(rank));
    }
    sim.run();
    let mut got = released.borrow().clone();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2, 3]);
}

#[test]
fn bcast_reaches_all_ranks() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 3);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let data = payload(3000);
    let got: Rc<RefCell<Vec<(usize, Bytes)>>> = Rc::new(RefCell::new(Vec::new()));
    for mpi in &mpis {
        let g = got.clone();
        let rank = mpi.rank();
        let root_data = if rank == 1 { Some(data.clone()) } else { None };
        collectives::bcast(mpi, &mut sim, 1, root_data, move |_s, d| {
            g.borrow_mut().push((rank, d))
        });
    }
    sim.run();
    let got = got.borrow();
    assert_eq!(got.len(), 3);
    for (_, d) in got.iter() {
        assert_eq!(d, &data);
    }
}

#[test]
fn pvm_pack_send_recv_unpack() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let ips: Vec<IpAddr> = (0..2u32).map(IpAddr::for_node).collect();
    let t0 = TcpTransport::new(&mut sim, &nodes[0].tcp, 0, ips.clone());
    let t1 = TcpTransport::new(&mut sim, &nodes[1].tcp, 1, ips);
    sim.run();
    assert!(t0.ready() && t1.ready());
    let pvm0 = Pvm::new(&nodes[0].kernel, t0 as Rc<dyn Transport>);
    let pvm1 = Pvm::new(&nodes[1].kernel, t1 as Rc<dyn Transport>);
    let data = payload(8000);
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    pvm1.recv(&mut sim, -1, 9, move |_s, m| *g.borrow_mut() = Some(m.data));
    let p0 = pvm0.clone();
    let d2 = data.clone();
    pvm0.pack(&mut sim, data.clone(), move |sim| {
        p0.send(sim, 1, 9);
        let _ = &d2;
    });
    sim.run();
    assert_eq!(got.borrow().as_ref().unwrap(), &data);
}

#[test]
fn pvm_costs_more_cpu_than_mpi() {
    // The Figure 6 ordering depends on PVM paying pack/unpack copies.
    fn run(pvm: bool) -> clic_sim::SimDuration {
        let mut sim = Sim::new(0);
        let nodes = mk_cluster(&mut sim, 2);
        let ips: Vec<IpAddr> = (0..2u32).map(IpAddr::for_node).collect();
        let t0 = TcpTransport::new(&mut sim, &nodes[0].tcp, 0, ips.clone());
        let t1 = TcpTransport::new(&mut sim, &nodes[1].tcp, 1, ips);
        sim.run();
        let data = payload(60_000);
        if pvm {
            let pvm0 = Pvm::new(&nodes[0].kernel, t0 as Rc<dyn Transport>);
            let pvm1 = Pvm::new(&nodes[1].kernel, t1 as Rc<dyn Transport>);
            pvm1.recv(&mut sim, -1, 1, |_s, _m| {});
            let p0 = pvm0.clone();
            pvm0.pack(&mut sim, data, move |sim| p0.send(sim, 1, 1));
        } else {
            let m0 = Mpi::new(&nodes[0].kernel, t0 as Rc<dyn Transport>);
            let m1 = Mpi::new(&nodes[1].kernel, t1 as Rc<dyn Transport>);
            m1.recv(&mut sim, ANY_SOURCE, 1, |_s, _m| {});
            m0.send(&mut sim, 1, 1, data);
        }
        sim.run();
        let cpu = nodes[0].kernel.borrow().cpu.clone();
        let t = cpu.borrow().busy_total();
        t
    }
    let mpi_cpu = run(false);
    let pvm_cpu = run(true);
    assert!(
        pvm_cpu > mpi_cpu,
        "PVM sender CPU {pvm_cpu} must exceed MPI's {mpi_cpu}"
    );
}

#[test]
fn large_transfer_over_both_backends_identical_payload() {
    let data = payload(150_000);
    for backend in ["clic", "tcp"] {
        let mut sim = Sim::new(0);
        let nodes = mk_cluster(&mut sim, 2);
        let mpis = if backend == "clic" {
            mpi_over_clic(&mut sim, &nodes)
        } else {
            mpi_over_tcp(&mut sim, &nodes)
        };
        let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
        let g = got.clone();
        mpis[1].recv(&mut sim, 0, 1, move |_s, m| *g.borrow_mut() = Some(m.data));
        mpis[0].send(&mut sim, 1, 1, data.clone());
        sim.set_event_limit(50_000_000);
        sim.run();
        assert_eq!(
            got.borrow().as_ref().unwrap(),
            &data,
            "backend {backend} corrupted payload"
        );
    }
}

#[test]
fn isend_irecv_requests() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let data = payload(2000);
    let rreq = mpis[1].irecv(&mut sim, 0, 7);
    let sreq = mpis[0].isend(&mut sim, 1, 7, data.clone());
    assert!(!rreq.test(), "recv cannot complete before traffic flows");
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    rreq.wait(&mut sim, move |_s, m| {
        *g.borrow_mut() = Some(m.unwrap().data)
    });
    sim.run();
    assert!(sreq.test());
    assert!(rreq.test());
    assert_eq!(got.borrow().as_ref().unwrap(), &data);
}

#[test]
fn rendezvous_used_above_eager_limit() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    mpis[0].set_eager_limit(4096);
    let big = payload(50_000);
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    mpis[1].recv(&mut sim, 0, 3, move |_s, m| *g.borrow_mut() = Some(m.data));
    mpis[0].send(&mut sim, 1, 3, big.clone());
    sim.run();
    assert_eq!(got.borrow().as_ref().unwrap(), &big);
    assert_eq!(
        mpis[0].rendezvous_started(),
        1,
        "must take the RTS/CTS path"
    );
}

#[test]
fn rendezvous_rts_before_recv_posted() {
    // The announce arrives before any matching receive exists: it must be
    // remembered and complete once the receive is posted.
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    mpis[0].set_eager_limit(1024);
    let big = payload(20_000);
    mpis[0].send(&mut sim, 1, 9, big.clone());
    sim.run(); // RTS delivered, no recv posted yet
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    mpis[1].recv(&mut sim, 0, 9, move |_s, m| *g.borrow_mut() = Some(m.data));
    sim.run();
    assert_eq!(got.borrow().as_ref().unwrap(), &big);
}

#[test]
fn rendezvous_bounds_receiver_buffering() {
    // Ten large unexpected messages: with rendezvous only the tiny RTS
    // packets buffer at the receiver, not the payloads.
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    mpis[0].set_eager_limit(1024);
    for _ in 0..10 {
        mpis[0].send(&mut sim, 1, 4, payload(30_000));
    }
    sim.run();
    // Nothing in the unexpected EAGER queue; the data has not moved yet.
    assert_eq!(mpis[1].unexpected_peak(), 0);
    let count: Rc<RefCell<usize>> = Rc::new(RefCell::new(0));
    for _ in 0..10 {
        let c = count.clone();
        mpis[1].recv(&mut sim, 0, 4, move |_s, m| {
            assert_eq!(m.data.len(), 30_000);
            *c.borrow_mut() += 1;
        });
    }
    sim.run();
    assert_eq!(*count.borrow(), 10);
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 2);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let (g0, g1): (Rc<RefCell<Option<Bytes>>>, Rc<RefCell<Option<Bytes>>>) = Default::default();
    let g = g0.clone();
    mpis[0].sendrecv(
        &mut sim,
        1,
        1,
        Bytes::from_static(b"from-zero"),
        1,
        2,
        move |_s, m| *g.borrow_mut() = Some(m.data),
    );
    let g = g1.clone();
    mpis[1].sendrecv(
        &mut sim,
        0,
        2,
        Bytes::from_static(b"from-one"),
        0,
        1,
        move |_s, m| *g.borrow_mut() = Some(m.data),
    );
    sim.run();
    assert_eq!(&g0.borrow().as_ref().unwrap()[..], b"from-one");
    assert_eq!(&g1.borrow().as_ref().unwrap()[..], b"from-zero");
}

#[test]
fn gather_collects_by_rank() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 4);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let result: Rc<RefCell<Option<Vec<Bytes>>>> = Rc::new(RefCell::new(None));
    for mpi in &mpis {
        let rank = mpi.rank();
        let r = result.clone();
        collectives::gather(
            mpi,
            &mut sim,
            2,
            Bytes::from(vec![rank as u8; rank + 1]),
            move |_s, slots| {
                if !slots.is_empty() {
                    *r.borrow_mut() = Some(slots);
                }
            },
        );
    }
    sim.run();
    let slots = result.borrow().clone().expect("root must gather");
    assert_eq!(slots.len(), 4);
    for (rank, piece) in slots.iter().enumerate() {
        assert_eq!(piece.len(), rank + 1);
        assert!(piece.iter().all(|&b| b == rank as u8));
    }
}

#[test]
fn scatter_distributes_pieces() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 3);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let got: Rc<RefCell<Vec<(usize, Bytes)>>> = Rc::new(RefCell::new(Vec::new()));
    for mpi in &mpis {
        let rank = mpi.rank();
        let pieces = if rank == 0 {
            Some((0..3u8).map(|r| Bytes::from(vec![r; 16])).collect())
        } else {
            None
        };
        let g = got.clone();
        collectives::scatter(mpi, &mut sim, 0, pieces, move |_s, piece| {
            g.borrow_mut().push((rank, piece));
        });
    }
    sim.run();
    let got = got.borrow();
    assert_eq!(got.len(), 3);
    for (rank, piece) in got.iter() {
        assert!(piece.iter().all(|&b| b == *rank as u8));
    }
}

#[test]
fn allreduce_sums_across_ranks() {
    let mut sim = Sim::new(0);
    let nodes = mk_cluster(&mut sim, 4);
    let mpis = mpi_over_clic(&mut sim, &nodes);
    let sums: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    for mpi in &mpis {
        let s = sums.clone();
        let value = (mpi.rank() as u64 + 1) * 10; // 10+20+30+40 = 100
        collectives::allreduce_sum(mpi, &mut sim, value, move |_sim, total| {
            s.borrow_mut().push(total)
        });
    }
    sim.run();
    assert_eq!(*sums.borrow(), vec![100, 100, 100, 100]);
}

// ----------------------------------------------------------------------
// NIC-offloaded collectives: the backend switch must not change results
// ----------------------------------------------------------------------

/// Arm every node's NIC collective engine for `group` over the whole
/// cluster membership.
fn arm_collectives(nodes: &[Node], group: u32) {
    let members: Vec<MacAddr> = (0..nodes.len() as u32)
        .map(|id| MacAddr::for_node(id, 0))
        .collect();
    for (rank, node) in nodes.iter().enumerate() {
        Nic::enable_collectives(&node.nic, CollConfig::new(group, members.clone(), rank));
    }
}

/// Run barrier + allreduce + bcast on `backends`, returning
/// (barrier completions, allreduce results per rank, bcast payloads per rank).
fn run_collective_suite(
    sim: &mut Sim,
    backends: &[CollBackend],
    values: &[u64],
    bcast_payload: Bytes,
) -> (u32, Vec<u64>, Vec<Bytes>) {
    let n = backends.len();
    let barriers = Rc::new(RefCell::new(0u32));
    let sums: Rc<RefCell<Vec<Option<u64>>>> = Rc::new(RefCell::new(vec![None; n]));
    let datas: Rc<RefCell<Vec<Option<Bytes>>>> = Rc::new(RefCell::new(vec![None; n]));
    let root = n - 1;
    for (rank, backend) in backends.iter().enumerate() {
        let b = barriers.clone();
        collectives::barrier_on(backend, sim, move |_sim| *b.borrow_mut() += 1);
        let s = sums.clone();
        collectives::allreduce_sum_on(backend, sim, values[rank], move |_sim, total| {
            s.borrow_mut()[rank] = Some(total);
        });
        let data = (rank == root).then(|| bcast_payload.clone());
        let d = datas.clone();
        collectives::bcast_on(backend, sim, root, data, move |_sim, payload| {
            d.borrow_mut()[rank] = Some(payload);
        });
    }
    sim.run();
    let sums = sums
        .borrow()
        .iter()
        .map(|s| s.expect("allreduce done"))
        .collect();
    let datas = datas
        .borrow()
        .iter()
        .map(|d| d.clone().expect("bcast done"))
        .collect();
    let b = *barriers.borrow();
    (b, sums, datas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The host-based (linear, through the full OS stack) and the
    /// NIC-offloaded (firmware combining tree) backends must produce
    /// identical collective results for arbitrary cluster sizes and
    /// contributions — they differ only in cost.
    #[test]
    fn nic_and_host_collectives_agree(
        n in 2usize..10,
        raw in proptest::collection::vec(0u64..1_000_000, 16..17),
    ) {
        let values: Vec<u64> = raw[..n].to_vec();
        let payload = Bytes::from(raw.iter().map(|v| (v % 251) as u8).collect::<Vec<_>>());
        let expected: u64 = values.iter().sum();

        let mut host_sim = Sim::new(1);
        let host_nodes = mk_cluster(&mut host_sim, n);
        let host_backends: Vec<CollBackend> = mpi_over_clic(&mut host_sim, &host_nodes)
            .into_iter()
            .map(CollBackend::Host)
            .collect();
        let (hb, hs, hd) =
            run_collective_suite(&mut host_sim, &host_backends, &values, payload.clone());

        let mut nic_sim = Sim::new(1);
        let nic_nodes = mk_cluster(&mut nic_sim, n);
        arm_collectives(&nic_nodes, 7);
        let nic_backends: Vec<CollBackend> = nic_nodes
            .iter()
            .map(|node| CollBackend::NicOffload(node.nic.clone()))
            .collect();
        let (nb, ns, nd) =
            run_collective_suite(&mut nic_sim, &nic_backends, &values, payload.clone());

        prop_assert_eq!(hb, n as u32);
        prop_assert_eq!(nb, n as u32);
        prop_assert_eq!(&hs, &vec![expected; n]);
        prop_assert_eq!(&ns, &vec![expected; n]);
        prop_assert_eq!(&hd, &vec![payload.clone(); n]);
        prop_assert_eq!(&nd, &vec![payload; n]);

        // The offload must keep collective traffic out of the host: zero
        // interrupts and zero RX-ring occupancy from collective frames.
        for node in &nic_nodes {
            let st = node.nic.borrow().stats();
            prop_assert!(st.coll_msgs_rx > 0 || n == 1);
            prop_assert_eq!(st.coll_completions, 3);
        }
    }
}
