//! The observability layer's output is part of the contract: the Chrome
//! trace of the Figure 7a packet is byte-stable (golden file), parses as
//! JSON, and its span durations are exactly the Figure 7 stage timings —
//! which themselves must be bit-identical whether the figure jobs run on
//! one worker or four.

use clic_bench::json::Json;
use clic_bench::runner::{run_jobs, RunnerConfig};
use clic_cluster::experiments;
use clic_cluster::observe::{run_collective_trace, run_pipeline_trace, TraceScenario};

const GOLDEN: &str = include_str!("golden/fig7a_1400_trace.json");
const GOLDEN_LOSSY: &str = include_str!("golden/fig7a_lossy_trace.json");
const GOLDEN_COLL: &str = include_str!("golden/coll_barrier_8_trace.json");

fn fig7a_trace() -> clic_cluster::observe::PipelineTrace {
    run_pipeline_trace(TraceScenario::Fig7a, 1400, 1500, 0)
}

#[test]
fn chrome_trace_matches_golden_file() {
    let t = fig7a_trace();
    assert_eq!(
        t.chrome_json, GOLDEN,
        "Chrome trace for the Figure 7a packet changed; if intentional, \
         regenerate crates/bench/tests/golden/fig7a_1400_trace.json with \
         `figures trace fig7a --out <golden path>`"
    );
}

#[test]
fn lossy_chrome_trace_matches_golden_file() {
    // A 14000-byte message over the fault-injected link (every 4th forward
    // frame lost, clean reverse path): the trace is byte-stable and shows
    // both recovery mechanisms as instant events.
    let t = run_pipeline_trace(TraceScenario::Fig7aLossy, 14_000, 1500, 0);
    assert_eq!(
        t.chrome_json, GOLDEN_LOSSY,
        "Chrome trace for the lossy Figure 7a run changed; if intentional, \
         regenerate crates/bench/tests/golden/fig7a_lossy_trace.json with \
         `figures trace fig7a-lossy --size 14000 --out <golden path>`"
    );
    assert!(t.chrome_json.contains("\"fast_retransmit\""));
    assert!(t.chrome_json.contains("\"rto\""));
    assert!(t.chrome_json.contains("\"link_drop\""));
}

#[test]
fn coll_barrier_trace_matches_golden_file() {
    // An 8-node NIC-offloaded barrier on the leaf–spine fabric: the
    // firmware combining tree's up/down instants and every control
    // frame's wire crossing, byte-stable.
    let t = run_collective_trace(8, 0);
    assert_eq!(
        t.chrome_json, GOLDEN_COLL,
        "Chrome trace for the 8-node NIC barrier changed; if intentional, \
         regenerate crates/bench/tests/golden/coll_barrier_8_trace.json with \
         `cargo test -p clic-bench --test trace regenerate_coll_golden -- --ignored`"
    );
    assert!(t.chrome_json.contains("\"nic_coll_up\""));
    assert!(t.chrome_json.contains("\"nic_coll_down\""));
}

/// Regenerates the NIC-barrier golden file in place. Run explicitly after
/// an intentional trace-format or engine change:
/// `cargo test -p clic-bench --test trace regenerate_coll_golden -- --ignored`
#[test]
#[ignore = "writes the golden file; run only to regenerate it"]
fn regenerate_coll_golden() {
    let t = run_collective_trace(8, 0);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/coll_barrier_8_trace.json"
    );
    std::fs::write(path, &t.chrome_json).expect("write golden");
}

#[test]
fn chrome_trace_parses_and_is_populated() {
    let t = fig7a_trace();
    let doc = Json::parse(&t.chrome_json).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Every complete event carries the trace id and a duration.
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), t.spans.len());
    for e in complete {
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("id"))
                .and_then(Json::as_f64),
            Some(42.0)
        );
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
    }
}

#[test]
fn trace_reproduces_figure7_stage_durations() {
    // The stage table printed in figures_full.txt (Figure 7a, 1400 B).
    let expected = [
        ("syscall", 0.65),
        ("clic_module_tx", 1.20),
        ("driver_tx", 1.00),
        ("nic_tx_dma", 13.56),
        ("driver_rx", 17.56),
        ("bottom_half", 0.50),
        ("clic_module_rx", 0.70),
        ("copy_to_user", 3.80),
    ];
    let t = fig7a_trace();
    for (stage, us) in expected {
        let span = t
            .spans
            .iter()
            .find(|s| s.stage == stage)
            .unwrap_or_else(|| panic!("no {stage} span"));
        let got = span.duration().as_us_f64();
        assert!((got - us).abs() < 0.005, "{stage}: {got} != {us}");
    }
    // Flight + interrupt wait (the paper's remaining stage): TX DMA end to
    // receive driver start.
    let dma = t.spans.iter().find(|s| s.stage == "nic_tx_dma").unwrap();
    let drx = t.spans.iter().find(|s| s.stage == "driver_rx").unwrap();
    let flight = (drx.begin - dma.end).as_us_f64();
    assert!((flight - 28.16).abs() < 0.005, "flight+irq: {flight}");
}

#[test]
fn trace_json_is_deterministic_across_runs() {
    let a = fig7a_trace();
    let b = fig7a_trace();
    assert_eq!(a.chrome_json, b.chrome_json);
    assert_eq!(a.metrics.dump(), b.metrics.dump());
}

#[test]
fn fig7_job_metrics_identical_for_jobs_1_and_4() {
    // The m.* measurement keys ride the same determinism contract as the
    // stage values: worker count must be invisible.
    let specs = experiments::fig7_jobs();
    let (serial, _) = run_jobs(&specs, &RunnerConfig::uncached(1));
    let (parallel, _) = run_jobs(&specs, &RunnerConfig::uncached(4));
    for id in ["fig7/7a", "fig7/7b"] {
        let a = &serial[id];
        let b = &parallel[id];
        assert_eq!(a, b, "{id} differs between --jobs 1 and --jobs 4");
        assert!(a.get("m.drops").is_some(), "{id} missing m.drops");
        assert!(a.get("m.retransmits").is_some());
        assert!(a.get("m.peak_switch_queue_depth").is_some());
    }
}
