//! The parallel runner must be invisible in the results: the full
//! `--quick` grid produces bit-identical measurements for `--jobs 1` and
//! `--jobs 4`, with and without the cache in the loop.

use clic_bench::runner::{run_jobs, RunnerConfig};
use clic_cluster::experiments::{FigureKind, ResultMap};
use clic_cluster::jobs::JobSpec;

fn quick_grid() -> Vec<JobSpec> {
    let sizes = clic_cluster::experiments::quick_sizes();
    FigureKind::ALL
        .into_iter()
        .flat_map(|kind| kind.jobs(&sizes))
        .collect()
}

/// Exact representation: value names and `f64` bit patterns per job.
fn bits(map: &ResultMap) -> Vec<(String, Vec<(String, u64)>)> {
    map.iter()
        .map(|(id, m)| {
            (
                id.clone(),
                m.values
                    .iter()
                    .map(|(n, v)| (n.clone(), v.to_bits()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn quick_grid_identical_for_jobs_1_and_4() {
    let specs = quick_grid();
    let (serial, r1) = run_jobs(&specs, &RunnerConfig::uncached(1));
    let (parallel, r4) = run_jobs(&specs, &RunnerConfig::uncached(4));
    assert_eq!(r1.jobs.len(), specs.len());
    assert_eq!(r4.jobs.len(), specs.len());
    assert_eq!(bits(&serial), bits(&parallel));
}

#[test]
fn scale_grid_identical_for_jobs_1_and_4() {
    // The scale family is opt-in (not in FigureKind::ALL), so the quick
    // grid above never covers it; its 8–16 node collective jobs carry the
    // same worker-count-invisibility contract.
    let sizes = clic_cluster::experiments::quick_sizes();
    let specs = FigureKind::Scale.jobs(&sizes);
    let (serial, r1) = run_jobs(&specs, &RunnerConfig::uncached(1));
    let (parallel, r4) = run_jobs(&specs, &RunnerConfig::uncached(4));
    assert_eq!(r1.jobs.len(), specs.len());
    assert_eq!(r4.jobs.len(), specs.len());
    assert_eq!(bits(&serial), bits(&parallel));
}

#[test]
fn quick_grid_identical_through_the_cache() {
    let dir = std::env::temp_dir().join(format!("clic-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = RunnerConfig {
        jobs: 4,
        cache_dir: Some(dir.clone()),
    };
    // Subset (one figure) to keep the cached pass cheap; the full-grid
    // equivalence is covered above.
    let sizes = clic_cluster::experiments::quick_sizes();
    let specs = FigureKind::Fig4.jobs(&sizes);
    let (fresh, r1) = run_jobs(&specs, &config);
    assert_eq!(r1.cache_hits(), 0);
    let (cached, r2) = run_jobs(&specs, &config);
    assert_eq!(r2.cache_hits(), specs.len());
    assert_eq!(bits(&fresh), bits(&cached));
    let _ = std::fs::remove_dir_all(&dir);
}
