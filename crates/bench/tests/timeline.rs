//! The timeline recorder's exports are part of the observability
//! contract: the incast counter-track trace is byte-stable (golden file),
//! parses as JSON with the headline Perfetto counter tracks, and the
//! `figures timeline` CLI emits identical bytes for any `--jobs N`.

use clic_bench::json::Json;
use clic_cluster::observe::{run_timeline, TimelineScenario};
use clic_sim::SimDuration;

const GOLDEN: &str = include_str!("golden/incast_timeline_trace.json");
const GOLDEN_CONGESTION: &str = include_str!("golden/congestion_timeline_trace.json");

fn incast_run() -> clic_cluster::observe::TimelineRun {
    run_timeline(TimelineScenario::Incast, SimDuration::from_us(1000), None)
}

#[test]
fn incast_counter_trace_matches_golden_file() {
    let t = incast_run();
    assert_eq!(
        t.chrome_json, GOLDEN,
        "counter-track trace for the incast timeline changed; if \
         intentional, regenerate \
         crates/bench/tests/golden/incast_timeline_trace.json with \
         `figures timeline incast --bucket-us 1000 --out <golden path>`"
    );
}

#[test]
fn incast_counter_trace_parses_with_headline_tracks() {
    let t = incast_run();
    let doc = Json::parse(&t.chrome_json).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut tracks = std::collections::BTreeSet::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) == Some("C") {
            let name = e.get("name").and_then(Json::as_str).expect("counter name");
            assert!(
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .is_some(),
                "counter sample without a value: {name}"
            );
            tracks.insert(name.to_string());
        }
    }
    // The acceptance headline: switch queue depth, receiver buffer
    // occupancy and per-link transmit rate all present as counter tracks.
    for want in [
        "eth.switch.queue_depth",
        "clic.recv_buffer_bytes",
        "eth.link.tx_bytes",
    ] {
        assert!(tracks.contains(want), "missing counter track {want}");
    }
    assert!(tracks.len() >= 3, "tracks: {tracks:?}");
}

#[test]
fn congestion_counter_trace_matches_golden_file() {
    // The cwnd sawtooth under incast, as a byte-stable Perfetto export:
    // the ECN-enabled 8→1 leaf-spine incast with switch marking and the
    // DCTCP-flavoured congestion window active.
    let t = run_timeline(
        TimelineScenario::Congestion,
        SimDuration::from_us(1000),
        None,
    );
    assert_eq!(
        t.chrome_json, GOLDEN_CONGESTION,
        "counter-track trace for the congestion timeline changed; if \
         intentional, regenerate \
         crates/bench/tests/golden/congestion_timeline_trace.json with \
         `figures timeline congestion --bucket-us 1000 --out <golden path>`"
    );
}

#[test]
fn congestion_counter_trace_shows_a_cwnd_sawtooth() {
    let t = run_timeline(
        TimelineScenario::Congestion,
        SimDuration::from_us(1000),
        None,
    );
    let doc = Json::parse(&t.chrome_json).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut tracks = std::collections::BTreeSet::new();
    let mut cwnd = Vec::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) == Some("C") {
            let name = e.get("name").and_then(Json::as_str).expect("counter name");
            tracks.insert(name.to_string());
            if name == "clic.cwnd" {
                cwnd.push(
                    e.get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Json::as_f64)
                        .expect("cwnd sample value"),
                );
            }
        }
    }
    // The headline tracks of the congestion story: the window, its
    // threshold, and the fabric's marking rate.
    for want in ["clic.cwnd", "clic.ssthresh", "eth.switch.ecn_marks"] {
        assert!(tracks.contains(want), "missing counter track {want}");
    }
    // A sawtooth both rises (additive increase / slow start) and falls
    // (mark-driven decrease) — a flat line means the control loop never
    // engaged.
    assert!(
        cwnd.windows(2).any(|w| w[1] > w[0]),
        "cwnd never grew: {cwnd:?}"
    );
    assert!(
        cwnd.windows(2).any(|w| w[1] < w[0]),
        "cwnd never cut: {cwnd:?}"
    );
}

#[test]
fn timeline_cli_is_byte_identical_for_any_jobs() {
    // Satellite of the determinism contract: the CLI's CSV (stdout) and
    // Perfetto JSON (--out) must not depend on the worker count.
    let run = |jobs: &str, out: &std::path::Path| {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_figures"))
            .args(["timeline", "incast", "--bucket-us", "200", "--jobs", jobs])
            .arg("--out")
            .arg(out)
            .output()
            .expect("figures timeline runs");
        assert!(output.status.success(), "{output:?}");
        output.stdout
    };
    let dir = std::env::temp_dir();
    let out1 = dir.join(format!("clic-tl-j1-{}.json", std::process::id()));
    let out8 = dir.join(format!("clic-tl-j8-{}.json", std::process::id()));
    let csv1 = run("1", &out1);
    let csv8 = run("8", &out8);
    assert_eq!(csv1, csv8, "timeline CSV differs between --jobs 1 and 8");
    let j1 = std::fs::read(&out1).expect("jobs-1 trace written");
    let j8 = std::fs::read(&out8).expect("jobs-8 trace written");
    assert_eq!(j1, j8, "timeline JSON differs between --jobs 1 and 8");
    assert!(!csv1.is_empty() && !j1.is_empty());
    let _ = std::fs::remove_file(&out1);
    let _ = std::fs::remove_file(&out8);
}

#[test]
fn timeline_smoke_covers_every_scenario() {
    // The CI step: every scenario replays and records enough series.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(["timeline", "--smoke"])
        .output()
        .expect("figures timeline --smoke runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    for s in TimelineScenario::ALL {
        assert!(
            stdout.contains(&format!("timeline {:<12}", s.name())),
            "smoke output missing scenario {}: {stdout}",
            s.name()
        );
    }
}
