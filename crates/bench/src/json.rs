//! A minimal JSON value type with a pretty printer and parser.
//!
//! The harness needs JSON in three places — the result cache, the
//! `BENCH_figures.json` report and `figures --json` output — and the
//! build environment has no registry access for `serde_json`, so this
//! module carries the small subset required: the value enum, a
//! deterministic pretty printer and a recursive-descent parser for the
//! documents the harness itself writes.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion-ordered (the printer emits keys in the order
    /// given), so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.pretty().trim_end())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<V: Into<Json>> From<BTreeMap<String, V>> for Json {
    fn from(v: BTreeMap<String, V>) -> Json {
        Json::Obj(v.into_iter().map(|(k, val)| (k, val.into())).collect())
    }
}

/// Shortest representation that round-trips through `f64`; integers print
/// without a fractional part. Non-finite values (which JSON cannot
/// express) print as `null`.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        // Rust's f64 Debug is the shortest round-tripping decimal form.
        format!("{n:?}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::obj([
            ("name", Json::from("fig4")),
            ("pass", Json::Bool(true)),
            ("n", Json::Num(3.5)),
            ("items", Json::from(vec![1.0f64, 2.0, 3.25])),
            ("nested", Json::obj([("k", Json::Null)])),
        ]);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn numbers_print_cleanly() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(-17.0), "-17");
        assert_eq!(format_number(0.1), "0.1");
        // A value whose shortest round-trip representation needs the full
        // 17 digits (0.1 + 0.2 != 0.3 in binary floating point).
        let tricky = 0.1 + 0.2;
        assert_eq!(format_number(tricky).parse::<f64>().unwrap(), tricky);
    }

    #[test]
    fn strings_escape() {
        let doc = Json::Str("a\"b\\c\nd".into());
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
    }
}
