//! # clic-bench — figure regeneration and performance benchmarks
//!
//! * `figures` binary — regenerates every table and figure of the paper's
//!   evaluation as CSV/text (see `figures --help`); EXPERIMENTS.md records
//!   paper-vs-measured for each. Experiment jobs run on a worker pool
//!   (`--jobs N`) backed by a content-addressed result cache, and every
//!   run writes a machine-readable `BENCH_figures.json` timing report.
//! * [`runner`] — the worker pool + cache: executes
//!   [`clic_cluster::jobs::JobSpec`] sets with results bit-identical to a
//!   serial run.
//! * [`json`] — the minimal JSON reader/writer behind the cache,
//!   `--json` output and `BENCH_figures.json`.
//! * `figures bench` — the engine-performance family: microbenchmarks of
//!   the calendar-queue engine against [`reference`] (an in-process
//!   re-implementation of the pre-overhaul `BinaryHeap` + boxed-closure
//!   scheduler), plus an uncached full-grid replay reporting
//!   whole-simulator events/second; results land in the `"bench"`
//!   section of `BENCH_figures.json`.
//! * `benches/figures.rs` — Criterion benchmarks wrapping each experiment
//!   so regressions in simulator performance are visible.
//! * `benches/engine.rs` — microbenchmarks of the DES engine itself
//!   (events/second, resource contention overhead).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod reference;
pub mod render;
pub mod runner;
