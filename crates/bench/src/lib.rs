//! # clic-bench — figure regeneration and performance benchmarks
//!
//! * `figures` binary — regenerates every table and figure of the paper's
//!   evaluation as CSV/text (see `figures --help`); EXPERIMENTS.md records
//!   paper-vs-measured for each.
//! * `benches/figures.rs` — Criterion benchmarks wrapping each experiment
//!   so regressions in simulator performance are visible.
//! * `benches/engine.rs` — microbenchmarks of the DES engine itself
//!   (events/second, resource contention overhead).

#![warn(missing_docs)]

pub mod render;
