//! Text/CSV rendering of experiment results.

use clic_cluster::experiments::Series;

/// Render a set of bandwidth series as CSV: a `size` column followed by
/// one column per series.
pub fn series_csv(series: &[Series]) -> String {
    let mut out = String::from("size_bytes");
    for s in series {
        out.push(',');
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');
    let sizes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.size).collect())
        .unwrap_or_default();
    for (i, size) in sizes.iter().enumerate() {
        out.push_str(&size.to_string());
        for s in series {
            out.push(',');
            let v = s.points.get(i).map(|p| p.mbps).unwrap_or(f64::NAN);
            out.push_str(&format!("{v:.1}"));
        }
        out.push('\n');
    }
    out
}

/// Render a crude log-x ASCII chart of the series (who-wins at a glance).
pub fn series_ascii(series: &[Series], width: usize) -> String {
    let peak = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.mbps))
        .fold(1.0f64, f64::max);
    let mut out = String::new();
    for s in series {
        out.push_str(&format!("{:<28}\n", s.label));
        for p in &s.points {
            let bars = ((p.mbps / peak) * width as f64).round() as usize;
            out.push_str(&format!(
                "  {:>9} | {:<w$} {:>7.1} Mb/s\n",
                human_size(p.size),
                "#".repeat(bars),
                p.mbps,
                w = width
            ));
        }
    }
    out
}

fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clic_cluster::experiments::SeriesPoint;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                label: "A".into(),
                points: vec![
                    SeriesPoint {
                        size: 64,
                        mbps: 10.0,
                    },
                    SeriesPoint {
                        size: 1024,
                        mbps: 100.0,
                    },
                ],
            },
            Series {
                label: "B".into(),
                points: vec![
                    SeriesPoint {
                        size: 64,
                        mbps: 5.0,
                    },
                    SeriesPoint {
                        size: 1024,
                        mbps: 50.0,
                    },
                ],
            },
        ]
    }

    #[test]
    fn csv_layout() {
        let csv = series_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "size_bytes,A,B");
        assert_eq!(lines[1], "64,10.0,5.0");
        assert_eq!(lines[2], "1024,100.0,50.0");
    }

    #[test]
    fn ascii_contains_labels_and_bars() {
        let txt = series_ascii(&sample(), 20);
        assert!(txt.contains('A'));
        assert!(txt.contains("1K"));
        assert!(txt.contains('#'));
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(64), "64B");
        assert_eq!(human_size(2048), "2K");
        assert_eq!(human_size(4 << 20), "4M");
    }
}
