//! Parallel job execution with a content-addressed result cache.
//!
//! Takes a set of [`JobSpec`]s, runs the ones without a cached result on
//! a [`std::thread::scope`] worker pool, and returns a
//! [`ResultMap`] keyed by job id — so the output is deterministic and
//! bit-identical to [`clic_cluster::experiments::run_serial`] regardless
//! of worker count or completion order. Each job owns its entire
//! (`Rc`/`RefCell`-based) simulation on the thread that runs it; only the
//! plain-data [`JobSpec`] and the flat `Measurement` cross threads.
//!
//! Cache entries live under one directory (default
//! `target/figures-cache/`), one JSON file per job named by the job's
//! [`JobSpec::fingerprint`] — a stable hash of the job id, its full
//! configuration and the calibrated cost-model constants. Editing any
//! constant in `calibration.rs` changes every affected fingerprint, so
//! stale results are never reused; values are stored as `f64` bit
//! patterns, so a cache round-trip is exact.

use crate::json::Json;
use clic_cluster::experiments::ResultMap;
use clic_cluster::jobs::{JobSpec, Measurement, MEASUREMENT_SCHEMA_VERSION};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How to execute a job set.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker thread count; `1` runs everything on the calling thread.
    pub jobs: usize,
    /// Cache directory, or `None` to disable the cache entirely.
    pub cache_dir: Option<PathBuf>,
}

impl RunnerConfig {
    /// `jobs` workers with the cache disabled.
    pub fn uncached(jobs: usize) -> RunnerConfig {
        RunnerConfig {
            jobs,
            cache_dir: None,
        }
    }

    /// The default cache location, `<target>/figures-cache`.
    pub fn default_cache_dir() -> PathBuf {
        // Resolve relative to the workspace target dir when invoked via
        // cargo; fall back to ./target for a bare binary.
        std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target"))
            .join("figures-cache")
    }
}

/// How one job was satisfied, for reporting.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job id.
    pub id: String,
    /// Execution time in seconds (0 for cache hits).
    pub secs: f64,
    /// Whether the result came from the cache.
    pub cached: bool,
}

/// What a [`run_jobs`] call did, for `BENCH_figures.json`.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-job outcomes, in job-submission order.
    pub jobs: Vec<JobReport>,
    /// Wall-clock seconds for the whole call (including cache probes).
    pub wall_secs: f64,
    /// Worker threads used.
    pub workers: usize,
}

impl RunReport {
    /// Number of cache hits.
    pub fn cache_hits(&self) -> usize {
        self.jobs.iter().filter(|j| j.cached).count()
    }

    /// Cache hits as a fraction of all jobs (0 when the set is empty).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.cache_hits() as f64 / self.jobs.len() as f64
        }
    }

    /// Sum of executed-job times: what a serial, uncached run of the
    /// *executed* jobs would have cost.
    pub fn serial_equiv_secs(&self) -> f64 {
        self.jobs.iter().map(|j| j.secs).sum()
    }

    /// Executed-work speedup: serial-equivalent seconds over wall-clock.
    /// ~1.0 for `--jobs 1`, approaching the worker count for wide grids.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.serial_equiv_secs() / self.wall_secs
        } else {
            1.0
        }
    }

    /// Fold another report into this one (summing wall time; used to
    /// aggregate per-figure runs into a grand total).
    pub fn merge(&mut self, other: &RunReport) {
        self.jobs.extend(other.jobs.iter().cloned());
        self.wall_secs += other.wall_secs;
        self.workers = self.workers.max(other.workers);
    }
}

/// Execute `specs`, consulting and filling the cache, and return results
/// keyed by job id plus a report of what ran.
///
/// Panics if two specs share an id (ids are the result keys).
pub fn run_jobs(specs: &[JobSpec], config: &RunnerConfig) -> (ResultMap, RunReport) {
    let started = Instant::now();
    let workers = config.jobs.max(1);

    if let Some(dir) = &config.cache_dir {
        // Best-effort: a read-only disk just means no caching.
        let _ = std::fs::create_dir_all(dir);
    }

    // Probe the cache up front (cheap, serial), then run the misses.
    let mut slots: Vec<Option<(Measurement, f64, bool)>> = Vec::with_capacity(specs.len());
    let mut misses: Vec<usize> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let hit = config
            .cache_dir
            .as_deref()
            .and_then(|dir| read_cache(dir, spec));
        match hit {
            Some(m) => slots.push(Some((m, 0.0, true))),
            None => {
                slots.push(None);
                misses.push(i);
            }
        }
    }

    let fresh: Mutex<Vec<(usize, Measurement, f64)>> = Mutex::new(Vec::with_capacity(misses.len()));
    let next = AtomicUsize::new(0);
    let run_worker = |_w: usize| loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        let Some(&i) = misses.get(k) else { break };
        let t0 = Instant::now();
        let m = specs[i].run();
        let secs = t0.elapsed().as_secs_f64();
        fresh.lock().unwrap().push((i, m, secs));
    };
    if workers == 1 || misses.len() <= 1 {
        run_worker(0);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers.min(misses.len()) {
                scope.spawn(move || run_worker(w));
            }
        });
    }
    for (i, m, secs) in fresh.into_inner().unwrap() {
        if let Some(dir) = &config.cache_dir {
            write_cache(dir, &specs[i], &m);
        }
        slots[i] = Some((m, secs, false));
    }

    let mut results = ResultMap::new();
    let mut report = RunReport {
        jobs: Vec::with_capacity(specs.len()),
        wall_secs: 0.0,
        workers,
    };
    for (spec, slot) in specs.iter().zip(slots) {
        let (m, secs, cached) = slot.expect("every job slot filled");
        report.jobs.push(JobReport {
            id: spec.id.clone(),
            secs,
            cached,
        });
        let prev = results.insert(spec.id.clone(), m);
        assert!(prev.is_none(), "duplicate job id {:?}", spec.id);
    }
    report.wall_secs = started.elapsed().as_secs_f64();
    (results, report)
}

fn cache_path(dir: &Path, spec: &JobSpec) -> PathBuf {
    dir.join(format!("{:016x}.json", spec.fingerprint()))
}

/// Load a cached measurement, verifying the stored fingerprint, id and
/// schema version. Any mismatch or parse failure is treated as a miss.
fn read_cache(dir: &Path, spec: &JobSpec) -> Option<Measurement> {
    let text = std::fs::read_to_string(cache_path(dir, spec)).ok()?;
    let doc = Json::parse(&text).ok()?;
    let fingerprint = doc.get("fingerprint")?.as_str()?;
    if fingerprint != format!("{:016x}", spec.fingerprint()) {
        return None;
    }
    if doc.get("id")?.as_str()? != spec.id {
        return None;
    }
    if doc.get("schema")?.as_f64()? as u32 != MEASUREMENT_SCHEMA_VERSION {
        return None;
    }
    let mut m = Measurement::default();
    for entry in doc.get("values")?.as_arr()? {
        let pair = entry.as_arr()?;
        let name = pair.first()?.as_str()?;
        // The exact f64 is the hex bit pattern; the decimal third element
        // is informational only.
        let bits = u64::from_str_radix(pair.get(1)?.as_str()?, 16).ok()?;
        m.values.push((name.to_string(), f64::from_bits(bits)));
    }
    Some(m)
}

/// Persist a measurement. Best effort: cache-write failures are ignored
/// (the run itself already has the result in memory).
fn write_cache(dir: &Path, spec: &JobSpec, m: &Measurement) {
    let values = Json::Arr(
        m.values
            .iter()
            .map(|(name, v)| {
                Json::Arr(vec![
                    Json::Str(name.clone()),
                    Json::Str(format!("{:016x}", v.to_bits())),
                    Json::Num(*v),
                ])
            })
            .collect(),
    );
    let doc = Json::obj([
        (
            "fingerprint",
            Json::Str(format!("{:016x}", spec.fingerprint())),
        ),
        ("id", Json::Str(spec.id.clone())),
        ("schema", Json::Num(MEASUREMENT_SCHEMA_VERSION as f64)),
        ("values", values),
    ]);
    let path = cache_path(dir, spec);
    let tmp = path.with_extension("json.tmp");
    if std::fs::write(&tmp, doc.pretty()).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clic_cluster::calibration::CostModel;
    use clic_cluster::experiments::{self, run_serial};
    use clic_cluster::jobs::sweep_point;
    use clic_cluster::workload::StackKind;

    fn small_grid() -> Vec<JobSpec> {
        experiments::loss_jobs()
            .into_iter()
            .chain(experiments::syscall_jobs())
            .collect()
    }

    fn bits(map: &ResultMap) -> Vec<(String, Vec<(String, u64)>)> {
        map.iter()
            .map(|(id, m)| {
                (
                    id.clone(),
                    m.values
                        .iter()
                        .map(|(n, v)| (n.clone(), v.to_bits()))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let specs = small_grid();
        let serial = run_serial(&specs);
        let (par, report) = run_jobs(&specs, &RunnerConfig::uncached(4));
        assert_eq!(bits(&serial), bits(&par));
        assert_eq!(report.jobs.len(), specs.len());
        assert_eq!(report.cache_hits(), 0);
    }

    #[test]
    fn cache_round_trip_is_exact_and_hits_second_time() {
        let dir = std::env::temp_dir().join(format!("clic-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = RunnerConfig {
            jobs: 2,
            cache_dir: Some(dir.clone()),
        };
        let specs = small_grid();
        let (first, r1) = run_jobs(&specs, &config);
        assert_eq!(r1.cache_hits(), 0);
        let (second, r2) = run_jobs(&specs, &config);
        assert_eq!(r2.cache_hits(), specs.len());
        assert!(r2.cache_hit_rate() > 0.999);
        assert_eq!(bits(&first), bits(&second));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_are_misses() {
        let dir = std::env::temp_dir().join(format!("clic-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = RunnerConfig {
            jobs: 1,
            cache_dir: Some(dir.clone()),
        };
        let model = CostModel::era_2002();
        let specs = vec![sweep_point(
            "t/corrupt",
            experiments::clic_pair(&model, false, true),
            StackKind::Clic,
            1024,
        )];
        let (first, _) = run_jobs(&specs, &config);
        // Truncate the entry; the next run must recompute, not fail.
        let path = cache_path(&dir, &specs[0]);
        std::fs::write(&path, "{ not json").unwrap();
        let (second, r2) = run_jobs(&specs, &config);
        assert_eq!(r2.cache_hits(), 0);
        assert_eq!(bits(&first), bits(&second));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn duplicate_ids_panic() {
        let model = CostModel::era_2002();
        let mk = || {
            sweep_point(
                "t/dup",
                experiments::clic_pair(&model, false, true),
                StackKind::Clic,
                64,
            )
        };
        run_jobs(&[mk(), mk()], &RunnerConfig::uncached(1));
    }
}
