//! Reference event loop for engine speedup measurements.
//!
//! [`RefEngine`] reproduces the scheduler the simulator shipped with
//! before the calendar-queue overhaul: a `BinaryHeap` priority queue
//! ordered by `(time, seq)` whose every event carries a boxed closure.
//! `figures bench` runs the same synthetic workloads through this engine
//! and through [`clic_sim::Sim`], so the reported speedup compares the
//! current hot path against a faithful in-process baseline rather than
//! against a number measured on other hardware.
//!
//! The engine is deliberately minimal — no horizon, resources, metrics or
//! tracing — which *flatters* the baseline: the real pre-overhaul engine
//! did strictly more work per event than this loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event: fire `action` at `time`, FIFO among equal times.
struct RefEvent {
    time: u64,
    seq: u64,
    action: Box<dyn FnOnce(&mut RefEngine)>,
}

impl PartialEq for RefEvent {
    fn eq(&self, other: &RefEvent) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for RefEvent {}
impl PartialOrd for RefEvent {
    fn partial_cmp(&self, other: &RefEvent) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RefEvent {
    fn cmp(&self, other: &RefEvent) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, we pop the earliest key.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The pre-overhaul scheduler shape: binary heap + boxed actions.
#[derive(Default)]
pub struct RefEngine {
    queue: BinaryHeap<RefEvent>,
    now: u64,
    seq: u64,
    executed: u64,
}

impl RefEngine {
    /// An empty engine at time zero.
    pub fn new() -> RefEngine {
        RefEngine::default()
    }

    /// Current virtual time, nanoseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Schedule `action` at absolute time `at`.
    pub fn schedule_at(&mut self, at: u64, action: impl FnOnce(&mut RefEngine) + 'static) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(RefEvent {
            time: at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedule `action` after `delay` ns.
    pub fn schedule_in(&mut self, delay: u64, action: impl FnOnce(&mut RefEngine) + 'static) {
        self.schedule_at(self.now + delay, action);
    }

    /// Run until the queue drains.
    pub fn run(&mut self) {
        while let Some(ev) = self.queue.pop() {
            self.now = ev.time;
            self.executed += 1;
            (ev.action)(self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut e = RefEngine::new();
        for (tag, t) in [(0u32, 50u64), (1, 10), (2, 50), (3, 10)] {
            let order = order.clone();
            e.schedule_at(t, move |_| order.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*order.borrow(), vec![1, 3, 0, 2]);
        assert_eq!(e.executed(), 4);
        assert_eq!(e.now(), 50);
    }
}
