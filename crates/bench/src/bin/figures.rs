//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--json] <what>...
//!   what: fig4 fig5 fig6 fig7 scalars gamma coalescing fragmentation
//!         bonding syscall loss all
//! ```
//!
//! `--quick` uses a reduced size grid; `--json` emits machine-readable
//! output instead of CSV + ASCII charts.

use clic_bench::render::{series_ascii, series_csv};
use clic_cluster::experiments::{self, Series};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let mut what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if what.is_empty() || what.contains(&"all") {
        what = vec![
            "fig4", "fig5", "fig6", "fig7", "scalars", "gamma", "coalescing", "fragmentation",
            "bonding", "syscall", "loss", "cpu", "load", "paths", "scaling",
        ];
    }
    let sizes = if quick {
        experiments::quick_sizes()
    } else {
        experiments::paper_sizes()
    };

    for item in what {
        match item {
            "fig4" => figure(
                json,
                "Figure 4: CLIC bandwidth, MTU x copy-path",
                &experiments::fig4(&sizes),
            ),
            "fig5" => figure(
                json,
                "Figure 5: CLIC vs TCP/IP, MTU 9000/1500",
                &experiments::fig5(&sizes),
            ),
            "fig6" => figure(
                json,
                "Figure 6: CLIC, MPI-CLIC, MPI-TCP, PVM-TCP",
                &experiments::fig6(&sizes),
            ),
            "fig7" => {
                let a = experiments::fig7(false);
                let b = experiments::fig7(true);
                if json {
                    println!(
                        "{}",
                        serde_json::json!({"fig7a": a, "fig7b": b})
                    );
                } else {
                    println!("== Figure 7: 1400-byte packet pipeline stages ==");
                    println!("{:<18} {:>10} {:>10}", "stage", "7a (us)", "7b (us)");
                    let stage_names: Vec<&String> = a.iter().map(|r| &r.stage).collect();
                    for name in stage_names {
                        let va = a.iter().find(|r| &r.stage == name).map(|r| r.us);
                        let vb = b.iter().find(|r| &r.stage == name).map(|r| r.us);
                        println!(
                            "{:<18} {:>10} {:>10}",
                            name,
                            va.map(|v| format!("{v:.2}")).unwrap_or_default(),
                            vb.map(|v| format!("{v:.2}")).unwrap_or("-".into()),
                        );
                    }
                    let total = |rows: &[experiments::StageRow]| -> f64 {
                        rows.iter()
                            .filter(|r| {
                                ["driver_rx", "bottom_half", "clic_module_rx", "copy_to_user"]
                                    .contains(&r.stage.as_str())
                            })
                            .map(|r| r.us)
                            .sum()
                    };
                    println!(
                        "receive-path total: 7a = {:.1} us, 7b = {:.1} us (paper: ~20 -> ~5)",
                        total(&a),
                        total(&b)
                    );
                    println!();
                }
            }
            "scalars" => {
                let s = experiments::scalars(&sizes);
                if json {
                    println!("{}", serde_json::to_string_pretty(&s).unwrap());
                } else {
                    println!("== Headline scalars (paper Section 4/5) ==");
                    println!(
                        "0-byte one-way latency : {:7.1} us   (paper: 36)",
                        s.zero_byte_latency_us
                    );
                    println!(
                        "CLIC asymptote MTU9000 : {:7.1} Mb/s (paper: ~600)",
                        s.clic_asymptote_9000_mbps
                    );
                    println!(
                        "CLIC asymptote MTU1500 : {:7.1} Mb/s (paper: ~450)",
                        s.clic_asymptote_1500_mbps
                    );
                    println!(
                        "TCP  asymptote MTU9000 : {:7.1} Mb/s (paper: CLIC > 2x TCP)",
                        s.tcp_asymptote_9000_mbps
                    );
                    println!(
                        "CLIC 50%-of-peak (1500): {:7} B    (paper: ~4 KB)",
                        s.clic_half_bandwidth_bytes_1500
                    );
                    println!(
                        "CLIC 50%-of-peak (9000): {:7} B",
                        s.clic_half_bandwidth_bytes_9000
                    );
                    println!(
                        "TCP  50%-of-peak       : {:7} B    (paper: ~16 KB)",
                        s.tcp_half_bandwidth_bytes
                    );
                    println!();
                }
            }
            "gamma" => {
                let rows = experiments::gamma_table(&sizes);
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Section 5 comparison: CLIC vs GAMMA ==");
                    println!("{:<16} {:>12} {:>16}", "protocol", "latency(us)", "bandwidth(Mb/s)");
                    for r in rows {
                        println!(
                            "{:<16} {:>12.1} {:>16.1}",
                            r.protocol, r.latency_us, r.bandwidth_mbps
                        );
                    }
                    println!("(paper: CLIC 36 us / ~600 Mb/s; GAMMA 32 us (GA620) / 768-824 Mb/s)");
                    println!();
                }
            }
            "coalescing" => {
                let rows = experiments::ablation_coalescing();
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Ablation A: interrupt coalescing ==");
                    println!(
                        "{:>7} {:>7} {:>10} {:>14} {:>12}",
                        "usecs", "frames", "Mb/s", "irqs/kframe", "latency(us)"
                    );
                    for r in rows {
                        println!(
                            "{:>7} {:>7} {:>10.1} {:>14.1} {:>12.1}",
                            r.usecs, r.frames, r.mbps, r.irqs_per_kframe, r.latency_us
                        );
                    }
                    println!();
                }
            }
            "fragmentation" => figure(
                json,
                "Ablation B: NIC fragmentation offload (paper future work)",
                &experiments::ablation_fragmentation(&sizes),
            ),
            "bonding" => {
                let rows = experiments::ablation_bonding();
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Ablation C: channel bonding ==");
                    println!(
                        "{:>6} {:>16} {:>16}",
                        "width", "PCI 33/32 Mb/s", "PCI 66/64 Mb/s"
                    );
                    for r in rows {
                        println!(
                            "{:>6} {:>16.1} {:>16.1}",
                            r.width, r.mbps_pci33, r.mbps_pci66
                        );
                    }
                    println!();
                }
            }
            "syscall" => {
                let rows = experiments::ablation_syscall();
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Ablation D: system-call flavour (Section 3.2) ==");
                    for r in rows {
                        println!("{:<12} {:>8.2} us one-way", r.flavour, r.latency_us);
                    }
                    println!();
                }
            }
            "scaling" => {
                let rows = experiments::ablation_scaling();
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Ablation I: CLIC all-to-all scaling on a switch ==");
                    println!("{:>6} {:>16} {:>14}", "nodes", "aggregate Mb/s", "per node Mb/s");
                    for r in rows {
                        println!(
                            "{:>6} {:>16.1} {:>14.1}",
                            r.nodes, r.aggregate_mbps, r.per_node_mbps
                        );
                    }
                    println!();
                }
            }
            "claims" => {
                let rows = experiments::claims();
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Paper-claim checklist ==");
                    let mut all_pass = true;
                    for r in &rows {
                        all_pass &= r.pass;
                        println!(
                            "[{}] {:<4} {}\n        measured: {}",
                            if r.pass { "PASS" } else { "FAIL" },
                            r.id,
                            r.claim,
                            r.measured
                        );
                    }
                    println!();
                    println!(
                        "{} of {} claims reproduced",
                        rows.iter().filter(|r| r.pass).count(),
                        rows.len()
                    );
                    if !all_pass {
                        std::process::exit(1);
                    }
                }
            }
            "paths" => {
                let rows = experiments::ablation_paths();
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Ablation H: Figure 1 data paths ==");
                    println!("{:<5} {:>10} {:>10}  {}", "path", "link Mb/s", "Mb/s", "description");
                    for r in rows {
                        println!(
                            "{:<5} {:>10} {:>10.1}  {}",
                            r.path, r.link_mbps, r.mbps, r.description
                        );
                    }
                    println!();
                }
            }
            "load" => {
                let rows = experiments::ablation_latency_under_load();
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Ablation G: 64-byte latency under bulk load ==");
                    println!(
                        "{:<6} {:>8} {:>10} {:>10} {:>10}",
                        "stack", "loaded", "min (us)", "mean (us)", "p99 (us)"
                    );
                    for r in rows {
                        println!(
                            "{:<6} {:>8} {:>10.1} {:>10.1} {:>10.1}",
                            r.stack, r.loaded, r.min_us, r.mean_us, r.p99_us
                        );
                    }
                    println!();
                }
            }
            "cpu" => {
                let rows = experiments::ablation_cpu();
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Ablation F: CPU utilisation vs link speed (Section 2 claim) ==");
                    println!(
                        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
                        "stack", "link Mb/s", "Mb/s", "% of wire", "tx CPU", "rx CPU"
                    );
                    for r in rows {
                        println!(
                            "{:<6} {:>10} {:>10.1} {:>9.1}% {:>9.0}% {:>9.0}%",
                            r.stack,
                            r.link_mbps,
                            r.mbps,
                            r.pct_of_wire,
                            r.sender_cpu * 100.0,
                            r.receiver_cpu * 100.0
                        );
                    }
                    println!();
                }
            }
            "loss" => {
                let rows = experiments::ablation_loss();
                if json {
                    println!("{}", serde_json::to_string_pretty(&rows).unwrap());
                } else {
                    println!("== Ablation E: CLIC goodput under frame loss ==");
                    println!("{:>8} {:>10} {:>14}", "loss", "Mb/s", "retx/kpkt");
                    for r in rows {
                        println!("{:>8.3} {:>10.1} {:>14.2}", r.loss, r.mbps, r.retx_per_kpkt);
                    }
                    println!();
                }
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        }
    }
}

fn figure(json: bool, title: &str, series: &[Series]) {
    if json {
        println!("{}", serde_json::to_string_pretty(series).unwrap());
    } else {
        println!("== {title} ==");
        print!("{}", series_csv(series));
        println!();
        print!("{}", series_ascii(series, 40));
        println!();
    }
}
