//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--json] [--jobs N] [--no-cache] [--cache-dir DIR]
//!         [--metrics] <what>...
//!   what: fig4 fig5 fig6 fig7 scalars gamma coalescing fragmentation
//!         bonding syscall loss cpu load paths scaling reliability
//!         chaos scale congestion claims all (chaos, scale and
//!         congestion are opt-in: not part of all)
//! figures trace [scenario] [--size N] [--mtu M] [--seed S] [--out FILE]
//!         [--metrics] [--quick]
//!   scenario: fig7a (default) fig7b fig7a-lossy tcp
//! ```
//!
//! * `--quick` (alias `--smoke`) uses a reduced size grid.
//! * `--json` emits machine-readable output instead of CSV + ASCII charts.
//! * `--jobs N` runs experiment jobs on N worker threads (default: all
//!   cores). Results are bit-identical for every N.
//! * `--no-cache` / `--cache-dir DIR` control the content-addressed result
//!   cache (default `target/figures-cache/`); cached jobs are reused when
//!   the job configuration and cost-model constants are unchanged.
//! * `--metrics` also prints each figure's metric totals (drops,
//!   retransmits, peak switch queue depth).
//! * `trace` runs one traced message through the pipeline, writes Chrome
//!   trace-event JSON (load it at <https://ui.perfetto.dev>) and prints a
//!   per-stage breakdown.
//!
//! Every run (except `claims` and `trace`) also writes
//! `BENCH_figures.json`: wall clock and cache statistics per figure, the
//! speedup over a serial run of the executed jobs, and per-figure metric
//! totals.

use clic_bench::json::Json;
use clic_bench::render::{series_ascii, series_csv};
use clic_bench::runner::{run_jobs, RunReport, RunnerConfig};
use clic_cluster::experiments::{self, FigureKind, FigureOutput, ResultMap, Series, StageRow};
use clic_cluster::observe::{self, TimelineScenario, TraceScenario};

const USAGE: &str = "usage: figures [--quick|--smoke] [--json] [--jobs N] [--no-cache] \
[--cache-dir DIR] [--metrics] <what>...
  what: fig4 fig5 fig6 fig7 scalars gamma coalescing fragmentation
        bonding syscall loss cpu load paths scaling reliability chaos
        scale congestion claims all (chaos, scale and congestion are
        opt-in: not part of all)
   or: figures trace [fig7a|fig7b|fig7a-lossy|tcp] [--size N] [--mtu M]
        [--seed S] [--out FILE] [--metrics] [--quick]
   or: figures timeline [fig7a|reliability|incast|chaos|congestion]
        [--bucket-us N]
        [--out FILE] [--last N] [--jobs N] [--smoke]
        (replays one scenario with the timeline recorder on: CSV series
        on stdout, Perfetto counter-track JSON to --out; chaos keeps only
        the last --last buckets, flight-recorder style)
   or: figures bench [--quick|--smoke] [--json] [--jobs N] [--repeat N]
        (engine microbenches vs a BinaryHeap reference engine, plus a
        self-profiled uncached full-grid replay; results land in
        BENCH_figures.json)";

/// Per-figure totals of the `m.`-prefixed measurement keys every job
/// reports (schema v2; `events` since v5).
#[derive(Debug, Clone, Copy, Default)]
struct MetricTotals {
    drops: f64,
    retransmits: f64,
    peak_switch_queue_depth: f64,
    events: f64,
}

impl MetricTotals {
    fn from_results(results: &ResultMap) -> MetricTotals {
        let mut t = MetricTotals::default();
        for m in results.values() {
            t.drops += m.get("m.drops").unwrap_or(0.0);
            t.retransmits += m.get("m.retransmits").unwrap_or(0.0);
            t.peak_switch_queue_depth = t
                .peak_switch_queue_depth
                .max(m.get("m.peak_switch_queue_depth").unwrap_or(0.0));
            t.events += m.get("m.events").unwrap_or(0.0);
        }
        t
    }

    fn merge(&mut self, other: &MetricTotals) {
        self.drops += other.drops;
        self.retransmits += other.retransmits;
        self.peak_switch_queue_depth = self
            .peak_switch_queue_depth
            .max(other.peak_switch_queue_depth);
        self.events += other.events;
    }

    fn json(&self) -> Json {
        Json::obj([
            ("drops", Json::Num(self.drops)),
            ("retransmits", Json::Num(self.retransmits)),
            (
                "peak_switch_queue_depth",
                Json::Num(self.peak_switch_queue_depth),
            ),
            ("events", Json::Num(self.events)),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        run_trace(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("timeline") {
        run_timeline_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench") {
        run_bench(&args[1..]);
        return;
    }
    let mut quick = false;
    let mut json = false;
    let mut jobs: Option<usize> = None;
    let mut cache = true;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut metrics = false;
    let mut what: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "--smoke" => quick = true,
            "--json" => json = true,
            "--no-cache" => cache = false,
            "--metrics" => metrics = true,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => die("--jobs needs a positive integer"),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(dir.into()),
                None => die("--cache-dir needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => die(&format!("unknown flag '{other}'")),
            other => what.push(other.to_string()),
        }
    }
    if what.is_empty() || what.iter().any(|w| w == "all") {
        what = FigureKind::ALL
            .iter()
            .map(|k| k.name().to_string())
            .collect();
    }

    let sizes = if quick {
        experiments::quick_sizes()
    } else {
        experiments::paper_sizes()
    };
    let config = RunnerConfig {
        jobs: jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        cache_dir: cache.then(|| cache_dir.unwrap_or_else(RunnerConfig::default_cache_dir)),
    };

    let mut timings: Vec<(String, RunReport, MetricTotals)> = Vec::new();
    for item in &what {
        if item == "claims" {
            render_claims(json);
            continue;
        }
        let Some(kind) = FigureKind::from_name(item) else {
            eprintln!("unknown experiment '{item}'");
            std::process::exit(2);
        };
        let specs = kind.jobs(&sizes);
        let (results, report) = run_jobs(&specs, &config);
        let totals = MetricTotals::from_results(&results);
        render(json, kind, kind.assemble(&results, &sizes));
        if metrics && !json {
            println!(
                "[{}] metrics: drops={} retransmits={} peak_switch_queue_depth={}",
                kind.name(),
                totals.drops,
                totals.retransmits,
                totals.peak_switch_queue_depth
            );
            println!();
        }
        timings.push((kind.name().to_string(), report, totals));
    }

    if !timings.is_empty() {
        let path = "BENCH_figures.json";
        match std::fs::write(path, bench_report(quick, &config, &timings, None).pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// The `figures trace` subcommand: one traced message, any size and MTU.
fn run_trace(args: &[String]) {
    let mut scenario = TraceScenario::Fig7a;
    let mut size = 1400usize;
    let mut mtu = 1500usize;
    let mut seed = 0u64;
    let mut out = std::path::PathBuf::from("trace.json");
    let mut metrics = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // The trace run is a single message, so there is no reduced
            // grid; --quick is accepted for CLI symmetry with the figures.
            "--quick" | "--smoke" => {}
            "--metrics" => metrics = true,
            "--size" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => size = n,
                _ => die("--size needs a positive byte count"),
            },
            "--mtu" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => mtu = n,
                None => die("--mtu needs a byte count"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => die("--seed needs an integer"),
            },
            "--out" => match it.next() {
                Some(path) => out = path.into(),
                None => die("--out needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => die(&format!("unknown flag '{other}'")),
            other => match TraceScenario::parse(other) {
                Some(s) => scenario = s,
                None => die(&format!(
                    "unknown scenario '{other}' (expected fig7a, fig7b, fig7a-lossy or tcp)"
                )),
            },
        }
    }

    let t = observe::run_pipeline_trace(scenario, size, mtu, seed);
    println!(
        "== pipeline breakdown: {} {} B @ MTU {} ==",
        t.scenario.name(),
        t.size,
        t.mtu
    );
    print!("{}", observe::breakdown_table(&t.breakdown));
    println!();
    if metrics {
        print!("{}", t.metrics.dump());
        println!();
    }
    match std::fs::write(&out, &t.chrome_json) {
        Ok(()) => eprintln!(
            "wrote {} ({} spans; open in https://ui.perfetto.dev or chrome://tracing)",
            out.display(),
            t.spans.len()
        ),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}

/// The `figures timeline` subcommand: replay one scenario with the
/// timeline recorder sampling into fixed-width buckets. The CSV series go
/// to stdout; the Chrome/Perfetto counter-track JSON to `--out`. Output
/// is a pure function of (scenario, bucket, ring capacity): `--jobs` is
/// accepted for symmetry with the figure runs but a timeline replay is a
/// single simulation, so the bytes are identical for every N.
fn run_timeline_cmd(args: &[String]) {
    let mut scenario = TimelineScenario::Incast;
    let mut bucket_us = 10u64;
    let mut last: Option<usize> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut smoke = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" | "--quick" => smoke = true,
            "--bucket-us" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => bucket_us = n,
                _ => die("--bucket-us needs a positive microsecond count"),
            },
            "--last" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => last = Some(n),
                _ => die("--last needs a positive bucket count"),
            },
            "--out" => match it.next() {
                Some(path) => out = Some(path.into()),
                None => die("--out needs a path"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => {}
                _ => die("--jobs needs a positive integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => die(&format!("unknown flag '{other}'")),
            other => match TimelineScenario::parse(other) {
                Some(s) => scenario = s,
                None => die(&format!(
                    "unknown scenario '{other}' (expected fig7a, reliability, incast, \
                     chaos or congestion)"
                )),
            },
        }
    }

    let bucket = clic_sim::SimDuration::from_us(bucket_us);
    if smoke {
        // CI mode: replay every scenario once and insist each records a
        // usable set of series; nothing is written.
        let mut ok = true;
        for s in TimelineScenario::ALL {
            let t = observe::run_timeline(s, bucket, s.default_flight());
            let rows = t.csv.lines().filter(|l| !l.starts_with('#')).count();
            let tracks = t
                .chrome_json
                .lines()
                .filter(|l| l.contains("\"ph\": \"C\""))
                .count();
            println!(
                "timeline {:<12} {} series, {} rows, {} counter samples",
                s.name(),
                t.series,
                rows,
                tracks
            );
            ok &= t.series >= 3 && rows > 0 && tracks > 0;
        }
        if !ok {
            eprintln!("timeline smoke failed: a scenario recorded too few series");
            std::process::exit(1);
        }
        return;
    }

    let flight = last.or_else(|| scenario.default_flight());
    let t = observe::run_timeline(scenario, bucket, flight);
    print!("{}", t.csv);
    let out = out.unwrap_or_else(|| format!("timeline-{}.json", scenario.name()).into());
    match std::fs::write(&out, &t.chrome_json) {
        Ok(()) => eprintln!(
            "wrote {} ({} series; open in https://ui.perfetto.dev or chrome://tracing)",
            out.display(),
            t.series
        ),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

/// One measured microbench: `repeat` timed runs of a fixed event count.
struct BenchRow {
    name: String,
    events: u64,
    median_secs: f64,
    min_secs: f64,
}

impl BenchRow {
    /// Events per second at the median run.
    fn events_per_sec(&self) -> f64 {
        if self.median_secs > 0.0 {
            self.events as f64 / self.median_secs
        } else {
            0.0
        }
    }

    fn json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("events", Json::from(self.events as usize)),
            ("median_secs", Json::Num(self.median_secs)),
            ("min_secs", Json::Num(self.min_secs)),
            ("events_per_sec", Json::Num(self.events_per_sec())),
        ])
    }
}

/// Time `repeat` runs of `work` (which returns its event count).
fn measure(name: String, repeat: usize, work: impl Fn() -> u64) -> BenchRow {
    let mut secs = Vec::with_capacity(repeat);
    let mut events = 0;
    for _ in 0..repeat {
        let start = std::time::Instant::now();
        events = work();
        secs.push(start.elapsed().as_secs_f64());
    }
    secs.sort_by(f64::total_cmp);
    BenchRow {
        name,
        events,
        median_secs: secs[secs.len() / 2],
        min_secs: secs[0],
    }
}

/// The synthetic engine workloads, sized to `n` events each.
mod workloads {
    use clic_bench::reference::RefEngine;
    use clic_sim::{Sim, SimDuration};

    /// Self-rescheduling chain through the fn-pointer fast path.
    pub fn sim_chain(n: u64) -> u64 {
        let mut sim = Sim::new(0);
        fn tick(sim: &mut Sim, left: u64) {
            if left > 0 {
                sim.schedule_arg_in(SimDuration::from_ns(10), tick, left - 1);
            }
        }
        tick(&mut sim, n);
        sim.run();
        sim.events_executed()
    }

    /// The same chain through boxed closures (the general API).
    pub fn sim_chain_boxed(n: u64) -> u64 {
        let mut sim = Sim::new(0);
        fn tick(sim: &mut Sim, left: u64) {
            if left > 0 {
                sim.schedule_in(SimDuration::from_ns(10), move |sim| tick(sim, left - 1));
            }
        }
        tick(&mut sim, n);
        sim.run();
        sim.events_executed()
    }

    /// `n` events pre-scheduled across a 1 µs window, then drained.
    pub fn sim_fanout(n: u64) -> u64 {
        let mut sim = Sim::new(0);
        fn nop(_: &mut Sim) {}
        for i in 0..n {
            sim.schedule_fn_in(SimDuration::from_ns(i % 1000), nop);
        }
        sim.run();
        sim.events_executed()
    }

    /// The chain on the pre-overhaul scheduler shape.
    pub fn ref_chain(n: u64) -> u64 {
        let mut e = RefEngine::new();
        fn tick(e: &mut RefEngine, left: u64) {
            if left > 0 {
                e.schedule_in(10, move |e| tick(e, left - 1));
            }
        }
        tick(&mut e, n);
        e.run();
        e.executed()
    }

    /// The fanout on the pre-overhaul scheduler shape.
    pub fn ref_fanout(n: u64) -> u64 {
        let mut e = RefEngine::new();
        for i in 0..n {
            e.schedule_in(i % 1000, |_| {});
        }
        e.run();
        e.executed()
    }
}

/// The engine self-profiler: an [`clic_sim::EngineProbe`] that clocks
/// every dispatched event with host wall time and buckets it by dispatch
/// arm. Wall-clock use is policy-legal here in the bench layer only —
/// the probe never touches the simulated clock, so simulation results
/// are bit-identical with it installed. Each job gets its own probe
/// (from a `fn` pointer factory, so it crosses worker threads); a probe
/// folds its private tallies into the process-wide accumulator when the
/// job's simulator is dropped, and `take()` drains the accumulator
/// between figure families to attribute work per module.
mod profiler {
    use clic_sim::{ActionArm, EngineProbe};
    use std::sync::Mutex;
    use std::time::Instant;

    /// Per-arm `(events, host_ns)`, indexed by `ActionArm as usize`.
    pub type ArmTallies = [(u64, u64); 3];

    static AGG: Mutex<ArmTallies> = Mutex::new([(0, 0); 3]);

    struct Probe {
        started: Option<Instant>,
        local: ArmTallies,
    }

    impl EngineProbe for Probe {
        fn begin(&mut self, _arm: ActionArm) {
            // lint:allow(determinism-taint, reason="engine self-profiler measures host time only; tallies never feed back into simulated state")
            self.started = Some(Instant::now());
        }

        fn end(&mut self, arm: ActionArm) {
            if let Some(t0) = self.started.take() {
                let slot = &mut self.local[arm as usize];
                slot.0 += 1;
                slot.1 += t0.elapsed().as_nanos() as u64;
            }
        }
    }

    impl Drop for Probe {
        fn drop(&mut self) {
            let mut agg = AGG.lock().unwrap();
            for (a, l) in agg.iter_mut().zip(self.local) {
                a.0 += l.0;
                a.1 += l.1;
            }
        }
    }

    /// Factory handed to [`clic_cluster::jobs::set_job_probe_factory`].
    pub fn probe() -> Box<dyn EngineProbe> {
        Box::new(Probe {
            started: None,
            local: [(0, 0); 3],
        })
    }

    /// Drain and reset the accumulated tallies.
    pub fn take() -> ArmTallies {
        std::mem::take(&mut *AGG.lock().unwrap())
    }
}

/// Render one module's arm tallies as a JSON object.
fn profile_entry(name: &str, arms: profiler::ArmTallies) -> Json {
    let (events, host_ns) = arms
        .iter()
        .fold((0, 0), |(e, ns), &(ae, ans)| (e + ae, ns + ans));
    Json::obj([
        ("name", Json::from(name)),
        (
            "arms",
            Json::Arr(
                clic_sim::ActionArm::ALL
                    .iter()
                    .map(|&arm| {
                        let (e, ns) = arms[arm as usize];
                        Json::obj([
                            ("arm", Json::from(arm.name())),
                            ("events", Json::from(e as usize)),
                            ("host_ns", Json::from(ns as usize)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("events", Json::from(events as usize)),
        ("host_ns", Json::from(host_ns as usize)),
    ])
}

/// The `figures bench` subcommand: engine microbenches against the
/// in-process BinaryHeap reference engine ([`clic_bench::reference`]),
/// then an uncached full-grid replay whose `m.events` totals give
/// whole-simulator events/second. The replay runs with the engine
/// self-profiler installed, so the report also attributes host time and
/// event counts per dispatch arm per figure family. Everything lands in
/// `BENCH_figures.json` under `"bench"`.
fn run_bench(args: &[String]) {
    let mut quick = false;
    let mut json = false;
    let mut jobs: Option<usize> = None;
    let mut repeat: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "--smoke" => quick = true,
            "--json" => json = true,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => die("--jobs needs a positive integer"),
            },
            "--repeat" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => repeat = Some(n),
                _ => die("--repeat needs a positive integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown bench argument '{other}'")),
        }
    }

    let n: u64 = if quick { 10_000 } else { 100_000 };
    let repeat = repeat.unwrap_or(if quick { 3 } else { 5 });
    let tag = if quick { "10k" } else { "100k" };

    let engine = [
        measure(format!("engine_chain_{tag}"), repeat, || {
            workloads::sim_chain(n)
        }),
        measure(format!("engine_chain_boxed_{tag}"), repeat, || {
            workloads::sim_chain_boxed(n)
        }),
        measure(format!("engine_fanout_{tag}"), repeat, || {
            workloads::sim_fanout(n)
        }),
    ];
    let reference = [
        measure(format!("reference_chain_{tag}"), repeat, || {
            workloads::ref_chain(n)
        }),
        measure(format!("reference_fanout_{tag}"), repeat, || {
            workloads::ref_fanout(n)
        }),
    ];
    let speedup = |eng: &BenchRow, base: &BenchRow| {
        if eng.median_secs > 0.0 {
            base.median_secs / eng.median_secs
        } else {
            0.0
        }
    };
    let speedups = [
        ("chain", speedup(&engine[0], &reference[0])),
        ("chain_boxed", speedup(&engine[1], &reference[0])),
        ("fanout", speedup(&engine[2], &reference[1])),
    ];

    // Full-grid replay: always uncached — a cache hit would measure
    // nothing — but parallel like any figures run.
    let workers =
        jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let config = RunnerConfig::uncached(workers);
    let sizes = if quick {
        experiments::quick_sizes()
    } else {
        experiments::paper_sizes()
    };
    let mut timings: Vec<(String, RunReport, MetricTotals)> = Vec::new();
    let mut profile: Vec<(String, profiler::ArmTallies)> = Vec::new();
    clic_cluster::jobs::set_job_probe_factory(Some(profiler::probe));
    profiler::take(); // start from a clean accumulator
    for kind in FigureKind::ALL {
        let specs = kind.jobs(&sizes);
        let (results, report) = run_jobs(&specs, &config);
        let totals = MetricTotals::from_results(&results);
        timings.push((kind.name().to_string(), report, totals));
        profile.push((kind.name().to_string(), profiler::take()));
    }
    clic_cluster::jobs::set_job_probe_factory(None);
    let mut grid = RunReport::default();
    let mut grid_metrics = MetricTotals::default();
    for (_, r, t) in &timings {
        grid.merge(r);
        grid_metrics.merge(t);
    }
    let mut profile_total = [(0u64, 0u64); 3];
    for (_, arms) in &profile {
        for (t, a) in profile_total.iter_mut().zip(arms) {
            t.0 += a.0;
            t.1 += a.1;
        }
    }
    let grid_eps_serial = if grid.serial_equiv_secs() > 0.0 {
        grid_metrics.events / grid.serial_equiv_secs()
    } else {
        0.0
    };

    let bench = Json::obj([
        ("events_per_workload", Json::from(n as usize)),
        ("repeat", Json::from(repeat)),
        (
            "engine",
            Json::Arr(engine.iter().map(BenchRow::json).collect()),
        ),
        (
            "reference",
            Json::Arr(reference.iter().map(BenchRow::json).collect()),
        ),
        (
            "speedup_vs_reference",
            Json::obj(speedups.map(|(k, v)| (k, Json::Num(v)))),
        ),
        (
            "full_grid",
            Json::obj([
                ("jobs", Json::from(grid.jobs.len())),
                ("events", Json::Num(grid_metrics.events)),
                ("wall_secs", Json::Num(grid.wall_secs)),
                ("serial_equiv_secs", Json::Num(grid.serial_equiv_secs())),
                ("events_per_sec_serial", Json::Num(grid_eps_serial)),
            ]),
        ),
        (
            "profile",
            Json::obj([
                (
                    "modules",
                    Json::Arr(
                        profile
                            .iter()
                            .map(|(name, arms)| profile_entry(name, *arms))
                            .collect(),
                    ),
                ),
                ("total", profile_entry("total", profile_total)),
            ]),
        ),
    ]);

    if json {
        print_json(bench.clone());
    } else {
        println!("== engine microbenches ({n} events, {repeat} runs, median) ==");
        println!(
            "{:<24} {:>12} {:>12} {:>14}",
            "bench", "median(ms)", "min(ms)", "events/sec"
        );
        for row in engine.iter().chain(&reference) {
            println!(
                "{:<24} {:>12.3} {:>12.3} {:>14.0}",
                row.name,
                row.median_secs * 1e3,
                row.min_secs * 1e3,
                row.events_per_sec()
            );
        }
        println!();
        for (name, s) in speedups {
            println!("speedup vs reference ({name}): {s:.2}x");
        }
        println!();
        println!("== full-grid replay (uncached, {workers} workers) ==");
        println!(
            "{} jobs, {:.0} events, wall {:.2}s, serial-equivalent {:.2}s, {:.0} events/sec (serial)",
            grid.jobs.len(),
            grid_metrics.events,
            grid.wall_secs,
            grid.serial_equiv_secs(),
            grid_eps_serial
        );
        println!();
        println!("== engine self-profile (events | host ms, per dispatch arm) ==");
        println!(
            "{:<16} {:>20} {:>20} {:>20}",
            "module", "call", "call_arg", "boxed"
        );
        let total_row = ("total".to_string(), profile_total);
        for (name, arms) in profile.iter().chain(std::iter::once(&total_row)) {
            let cell = |(e, ns): (u64, u64)| format!("{e} | {:.1}", ns as f64 / 1e6);
            println!(
                "{:<16} {:>20} {:>20} {:>20}",
                name,
                cell(arms[0]),
                cell(arms[1]),
                cell(arms[2])
            );
        }
    }

    let path = "BENCH_figures.json";
    match std::fs::write(
        path,
        bench_report(quick, &config, &timings, Some(bench)).pretty(),
    ) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The `BENCH_figures.json` document: per-figure and total wall clock,
/// cache statistics, executed-work speedup over serial and metric totals.
/// `figures bench` additionally passes its microbench section, recorded
/// under a `"bench"` key.
fn bench_report(
    quick: bool,
    config: &RunnerConfig,
    timings: &[(String, RunReport, MetricTotals)],
    bench: Option<Json>,
) -> Json {
    let figure_entry = |name: &str, r: &RunReport, t: &MetricTotals| {
        Json::obj([
            ("name", Json::from(name)),
            ("jobs", Json::from(r.jobs.len())),
            ("cache_hits", Json::from(r.cache_hits())),
            ("cache_hit_rate", Json::Num(r.cache_hit_rate())),
            ("wall_secs", Json::Num(r.wall_secs)),
            ("serial_equiv_secs", Json::Num(r.serial_equiv_secs())),
            ("speedup_vs_serial", Json::Num(r.speedup_vs_serial())),
            ("metrics", t.json()),
        ])
    };
    let mut total = RunReport::default();
    let mut total_metrics = MetricTotals::default();
    for (_, r, t) in timings {
        total.merge(r);
        total_metrics.merge(t);
    }
    let mut fields = vec![
        (
            "schema",
            Json::from(clic_cluster::jobs::MEASUREMENT_SCHEMA_VERSION as usize),
        ),
        ("grid", Json::from(if quick { "quick" } else { "paper" })),
        ("workers", Json::from(config.jobs)),
        // Recorded so speedup numbers can be interpreted: with more
        // workers than cores, per-job timings include preemption time
        // and `speedup_vs_serial` overstates the real wall-clock gain.
        (
            "host_cores",
            Json::from(std::thread::available_parallelism().map_or(1, |n| n.get())),
        ),
        ("cache_enabled", Json::from(config.cache_dir.is_some())),
        (
            "figures",
            Json::Arr(
                timings
                    .iter()
                    .map(|(name, r, t)| figure_entry(name, r, t))
                    .collect(),
            ),
        ),
        ("total", figure_entry("total", &total, &total_metrics)),
    ];
    if let Some(bench) = bench {
        fields.push(("bench", bench));
    }
    Json::obj(fields)
}

fn render(json: bool, kind: FigureKind, output: FigureOutput) {
    match output {
        FigureOutput::Series(series) => figure(json, kind.title(), &series),
        FigureOutput::Stages { a, b } => render_fig7(json, kind.title(), &a, &b),
        FigureOutput::Scalars(s) => render_scalars(json, kind.title(), &s),
        FigureOutput::Gamma(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("protocol", Json::from(r.protocol.as_str())),
                                ("latency_us", Json::Num(r.latency_us)),
                                ("bandwidth_mbps", Json::Num(r.bandwidth_mbps)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<16} {:>12} {:>16}",
                    "protocol", "latency(us)", "bandwidth(Mb/s)"
                );
                for r in rows {
                    println!(
                        "{:<16} {:>12.1} {:>16.1}",
                        r.protocol, r.latency_us, r.bandwidth_mbps
                    );
                }
                println!("(paper: CLIC 36 us / ~600 Mb/s; GAMMA 32 us (GA620) / 768-824 Mb/s)");
                println!();
            }
        }
        FigureOutput::Coalescing(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("usecs", Json::Num(r.usecs as f64)),
                                ("frames", Json::Num(r.frames as f64)),
                                ("mbps", Json::Num(r.mbps)),
                                ("irqs_per_kframe", Json::Num(r.irqs_per_kframe)),
                                ("latency_us", Json::Num(r.latency_us)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:>7} {:>7} {:>10} {:>14} {:>12}",
                    "usecs", "frames", "Mb/s", "irqs/kframe", "latency(us)"
                );
                for r in rows {
                    println!(
                        "{:>7} {:>7} {:>10.1} {:>14.1} {:>12.1}",
                        r.usecs, r.frames, r.mbps, r.irqs_per_kframe, r.latency_us
                    );
                }
                println!();
            }
        }
        FigureOutput::Bonding(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("width", Json::from(r.width)),
                                ("mbps_pci33", Json::Num(r.mbps_pci33)),
                                ("mbps_pci66", Json::Num(r.mbps_pci66)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:>6} {:>16} {:>16}",
                    "width", "PCI 33/32 Mb/s", "PCI 66/64 Mb/s"
                );
                for r in rows {
                    println!(
                        "{:>6} {:>16.1} {:>16.1}",
                        r.width, r.mbps_pci33, r.mbps_pci66
                    );
                }
                println!();
            }
        }
        FigureOutput::Syscall(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("flavour", Json::from(r.flavour.as_str())),
                                ("latency_us", Json::Num(r.latency_us)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                for r in rows {
                    println!("{:<12} {:>8.2} us one-way", r.flavour, r.latency_us);
                }
                println!();
            }
        }
        FigureOutput::Loss(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("loss", Json::Num(r.loss)),
                                ("mbps", Json::Num(r.mbps)),
                                ("retx_per_kpkt", Json::Num(r.retx_per_kpkt)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!("{:>8} {:>10} {:>14}", "loss", "Mb/s", "retx/kpkt");
                for r in rows {
                    println!("{:>8.3} {:>10.1} {:>14.2}", r.loss, r.mbps, r.retx_per_kpkt);
                }
                println!();
            }
        }
        FigureOutput::Cpu(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("stack", Json::from(r.stack.as_str())),
                                ("link_mbps", Json::Num(r.link_mbps as f64)),
                                ("mbps", Json::Num(r.mbps)),
                                ("pct_of_wire", Json::Num(r.pct_of_wire)),
                                ("sender_cpu", Json::Num(r.sender_cpu)),
                                ("receiver_cpu", Json::Num(r.receiver_cpu)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    "stack", "link Mb/s", "Mb/s", "% of wire", "tx CPU", "rx CPU"
                );
                for r in rows {
                    println!(
                        "{:<6} {:>10} {:>10.1} {:>9.1}% {:>9.0}% {:>9.0}%",
                        r.stack,
                        r.link_mbps,
                        r.mbps,
                        r.pct_of_wire,
                        r.sender_cpu * 100.0,
                        r.receiver_cpu * 100.0
                    );
                }
                println!();
            }
        }
        FigureOutput::Load(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("stack", Json::from(r.stack.as_str())),
                                ("loaded", Json::from(r.loaded)),
                                ("min_us", Json::Num(r.min_us)),
                                ("mean_us", Json::Num(r.mean_us)),
                                ("p99_us", Json::Num(r.p99_us)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<6} {:>8} {:>10} {:>10} {:>10}",
                    "stack", "loaded", "min (us)", "mean (us)", "p99 (us)"
                );
                for r in rows {
                    println!(
                        "{:<6} {:>8} {:>10.1} {:>10.1} {:>10.1}",
                        r.stack, r.loaded, r.min_us, r.mean_us, r.p99_us
                    );
                }
                println!();
            }
        }
        FigureOutput::Paths(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("path", Json::Num(r.path as f64)),
                                ("description", Json::from(r.description.as_str())),
                                ("link_mbps", Json::Num(r.link_mbps as f64)),
                                ("mbps", Json::Num(r.mbps)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<5} {:>10} {:>10}  description",
                    "path", "link Mb/s", "Mb/s"
                );
                for r in rows {
                    println!(
                        "{:<5} {:>10} {:>10.1}  {}",
                        r.path, r.link_mbps, r.mbps, r.description
                    );
                }
                println!();
            }
        }
        FigureOutput::Scaling(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("nodes", Json::from(r.nodes)),
                                ("aggregate_mbps", Json::Num(r.aggregate_mbps)),
                                ("per_node_mbps", Json::Num(r.per_node_mbps)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:>6} {:>16} {:>14}",
                    "nodes", "aggregate Mb/s", "per node Mb/s"
                );
                for r in rows {
                    println!(
                        "{:>6} {:>16.1} {:>14.1}",
                        r.nodes, r.aggregate_mbps, r.per_node_mbps
                    );
                }
                println!();
            }
        }
        FigureOutput::Reliability(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("stack", Json::from(r.stack.as_str())),
                                ("mtu", Json::from(r.mtu)),
                                ("loss_pct", Json::Num(r.loss_pct)),
                                ("bursty", Json::from(r.bursty)),
                                ("mbps", Json::Num(r.mbps)),
                                ("mean_us", Json::Num(r.mean_us)),
                                ("p99_us", Json::Num(r.p99_us)),
                                ("retx", Json::Num(r.retx)),
                                ("drops", Json::Num(r.drops)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<6} {:>6} {:>7} {:>8} {:>10} {:>10} {:>10} {:>7} {:>7}",
                    "stack",
                    "mtu",
                    "loss%",
                    "model",
                    "Mb/s",
                    "mean(us)",
                    "p99(us)",
                    "retx",
                    "drops"
                );
                for r in rows {
                    println!(
                        "{:<6} {:>6} {:>7} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>7.0} {:>7.0}",
                        r.stack,
                        r.mtu,
                        r.loss_pct,
                        if r.bursty { "burst" } else { "uniform" },
                        r.mbps,
                        r.mean_us,
                        r.p99_us,
                        r.retx,
                        r.drops
                    );
                }
                println!();
            }
        }
        FigureOutput::Chaos { soak, incast } => {
            if json {
                let soak_rows = Json::Arr(
                    soak.iter()
                        .map(|r| {
                            Json::obj([
                                ("seed", Json::Num(r.seed as f64)),
                                ("loss_pct", Json::Num(r.loss_pct)),
                                ("crashes", Json::from(r.crashes)),
                                ("flaps", Json::from(r.flaps)),
                                ("posted", Json::Num(r.posted)),
                                ("confirmed", Json::Num(r.confirmed)),
                                ("failed", Json::Num(r.failed)),
                                ("delivered", Json::Num(r.delivered)),
                                ("err_peer_dead", Json::Num(r.err_peer_dead)),
                                ("err_stale_epoch", Json::Num(r.err_stale_epoch)),
                                ("err_max_retries", Json::Num(r.err_max_retries)),
                                ("eras", Json::Num(r.eras)),
                                ("stale_epoch_drops", Json::Num(r.stale_epoch_drops)),
                                ("retx", Json::Num(r.retx)),
                            ])
                        })
                        .collect(),
                );
                let incast_rows = Json::Arr(
                    incast
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("budget_bytes", r.budget.map_or(Json::Null, Json::from)),
                                ("senders", Json::from(r.senders)),
                                ("delivered", Json::Num(r.delivered)),
                                ("mean_us", Json::Num(r.mean_us)),
                                ("p99_us", Json::Num(r.p99_us)),
                                ("peak_buffered_bytes", Json::Num(r.peak_buffered_bytes)),
                                ("elapsed_us", Json::Num(r.elapsed_us)),
                            ])
                        })
                        .collect(),
                );
                print_json(Json::obj([("soak", soak_rows), ("incast", incast_rows)]));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:>4} {:>6} {:>7} {:>5} {:>7} {:>9} {:>7} {:>9} {:>5} {:>5} {:>5} {:>5} {:>10} {:>6}",
                    "seed",
                    "loss%",
                    "crashes",
                    "flaps",
                    "posted",
                    "confirmed",
                    "failed",
                    "delivered",
                    "pdead",
                    "stale",
                    "maxr",
                    "eras",
                    "staledrops",
                    "retx"
                );
                for r in soak {
                    println!(
                        "{:>4} {:>6} {:>7} {:>5} {:>7.0} {:>9.0} {:>7.0} {:>9.0} {:>5.0} {:>5.0} {:>5.0} {:>5.0} {:>10.0} {:>6.0}",
                        r.seed,
                        r.loss_pct,
                        r.crashes,
                        r.flaps,
                        r.posted,
                        r.confirmed,
                        r.failed,
                        r.delivered,
                        r.err_peer_dead,
                        r.err_stale_epoch,
                        r.err_max_retries,
                        r.eras,
                        r.stale_epoch_drops,
                        r.retx
                    );
                }
                println!();
                println!("-- 4-to-1 incast into a slow consumer --");
                println!(
                    "{:<10} {:>9} {:>10} {:>10} {:>12} {:>12}",
                    "budget", "delivered", "mean(us)", "p99(us)", "peak buf(B)", "elapsed(us)"
                );
                for r in incast {
                    let budget = r
                        .budget
                        .map(|b| format!("{}K", b / 1024))
                        .unwrap_or_else(|| "none".into());
                    println!(
                        "{:<10} {:>9.0} {:>10.1} {:>10.1} {:>12.0} {:>12.1}",
                        budget,
                        r.delivered,
                        r.mean_us,
                        r.p99_us,
                        r.peak_buffered_bytes,
                        r.elapsed_us
                    );
                }
                println!();
            }
        }
        FigureOutput::Congestion(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("workload", Json::from(r.workload)),
                                ("fabric", Json::from(r.fabric)),
                                ("senders", Json::from(r.senders)),
                                ("control", Json::from(r.control)),
                                ("goodput_mbps", Json::Num(r.goodput_mbps)),
                                ("p99_us", Json::Num(r.p99_us)),
                                ("drops", Json::Num(r.drops)),
                                ("marks", Json::Num(r.marks)),
                                ("echoes", Json::Num(r.echoes)),
                                ("retx", Json::Num(r.retx)),
                                ("peak_queue", Json::Num(r.peak_queue)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<8} {:<10} {:>7} {:>7} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>6}",
                    "workload",
                    "fabric",
                    "senders",
                    "control",
                    "Mb/s",
                    "p99(us)",
                    "drops",
                    "marks",
                    "echoes",
                    "retx",
                    "peakq"
                );
                for r in &rows {
                    let p99 = if r.p99_us.is_nan() {
                        "-".to_string()
                    } else {
                        format!("{:.1}", r.p99_us)
                    };
                    println!(
                        "{:<8} {:<10} {:>7} {:>7} {:>10.1} {:>10} {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>6.0}",
                        r.workload,
                        r.fabric,
                        r.senders,
                        r.control,
                        r.goodput_mbps,
                        p99,
                        r.drops,
                        r.marks,
                        r.echoes,
                        r.retx,
                        r.peak_queue
                    );
                }
                println!();
            }
        }
        FigureOutput::Scale(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("fabric", Json::from(r.fabric)),
                                ("nodes", Json::from(r.nodes)),
                                ("backend", Json::from(r.backend)),
                                ("barrier_us", Json::Num(r.barrier_us)),
                                ("allreduce_us", Json::Num(r.allreduce_us)),
                                ("switches", Json::Num(r.switches)),
                                ("trunks", Json::Num(r.trunks)),
                                ("coll_msgs", Json::Num(r.coll_msgs)),
                                ("host_irqs", Json::Num(r.host_irqs)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<10} {:>6} {:>8} {:>12} {:>13} {:>9} {:>7} {:>10} {:>10}",
                    "fabric",
                    "nodes",
                    "backend",
                    "barrier(us)",
                    "allreduce(us)",
                    "switches",
                    "trunks",
                    "coll msgs",
                    "host irqs"
                );
                for r in &rows {
                    println!(
                        "{:<10} {:>6} {:>8} {:>12.1} {:>13.1} {:>9.0} {:>7.0} {:>10.0} {:>10.0}",
                        r.fabric,
                        r.nodes,
                        r.backend,
                        r.barrier_us,
                        r.allreduce_us,
                        r.switches,
                        r.trunks,
                        r.coll_msgs,
                        r.host_irqs
                    );
                }
                println!();
            }
        }
    }
}

fn render_fig7(json: bool, title: &str, a: &[StageRow], b: &[StageRow]) {
    if json {
        let stages = |rows: &[StageRow]| {
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("stage", Json::from(r.stage.as_str())),
                            ("us", Json::Num(r.us)),
                        ])
                    })
                    .collect(),
            )
        };
        print_json(Json::obj([("fig7a", stages(a)), ("fig7b", stages(b))]));
        return;
    }
    println!("== {title} ==");
    println!("{:<18} {:>10} {:>10}", "stage", "7a (us)", "7b (us)");
    let stage_names: Vec<&String> = a.iter().map(|r| &r.stage).collect();
    for name in stage_names {
        let va = a.iter().find(|r| &r.stage == name).map(|r| r.us);
        let vb = b.iter().find(|r| &r.stage == name).map(|r| r.us);
        println!(
            "{:<18} {:>10} {:>10}",
            name,
            va.map(|v| format!("{v:.2}")).unwrap_or_default(),
            vb.map(|v| format!("{v:.2}")).unwrap_or("-".into()),
        );
    }
    let total = |rows: &[StageRow]| -> f64 {
        rows.iter()
            .filter(|r| {
                ["driver_rx", "bottom_half", "clic_module_rx", "copy_to_user"]
                    .contains(&r.stage.as_str())
            })
            .map(|r| r.us)
            .sum()
    };
    println!(
        "receive-path total: 7a = {:.1} us, 7b = {:.1} us (paper: ~20 -> ~5)",
        total(a),
        total(b)
    );
    println!();
}

fn render_scalars(json: bool, title: &str, s: &experiments::Scalars) {
    if json {
        print_json(Json::obj([
            ("zero_byte_latency_us", Json::Num(s.zero_byte_latency_us)),
            (
                "clic_asymptote_9000_mbps",
                Json::Num(s.clic_asymptote_9000_mbps),
            ),
            (
                "clic_asymptote_1500_mbps",
                Json::Num(s.clic_asymptote_1500_mbps),
            ),
            (
                "tcp_asymptote_9000_mbps",
                Json::Num(s.tcp_asymptote_9000_mbps),
            ),
            (
                "clic_half_bandwidth_bytes_1500",
                Json::from(s.clic_half_bandwidth_bytes_1500),
            ),
            (
                "clic_half_bandwidth_bytes_9000",
                Json::from(s.clic_half_bandwidth_bytes_9000),
            ),
            (
                "tcp_half_bandwidth_bytes",
                Json::from(s.tcp_half_bandwidth_bytes),
            ),
        ]));
        return;
    }
    println!("== {title} ==");
    println!(
        "0-byte one-way latency : {:7.1} us   (paper: 36)",
        s.zero_byte_latency_us
    );
    println!(
        "CLIC asymptote MTU9000 : {:7.1} Mb/s (paper: ~600)",
        s.clic_asymptote_9000_mbps
    );
    println!(
        "CLIC asymptote MTU1500 : {:7.1} Mb/s (paper: ~450)",
        s.clic_asymptote_1500_mbps
    );
    println!(
        "TCP  asymptote MTU9000 : {:7.1} Mb/s (paper: CLIC > 2x TCP)",
        s.tcp_asymptote_9000_mbps
    );
    println!(
        "CLIC 50%-of-peak (1500): {:7} B    (paper: ~4 KB)",
        s.clic_half_bandwidth_bytes_1500
    );
    println!(
        "CLIC 50%-of-peak (9000): {:7} B",
        s.clic_half_bandwidth_bytes_9000
    );
    println!(
        "TCP  50%-of-peak       : {:7} B    (paper: ~16 KB)",
        s.tcp_half_bandwidth_bytes
    );
    println!();
}

fn render_claims(json: bool) {
    let rows = experiments::claims();
    if json {
        print_json(Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("id", Json::from(r.id.as_str())),
                        ("claim", Json::from(r.claim.as_str())),
                        ("measured", Json::from(r.measured.as_str())),
                        ("pass", Json::from(r.pass)),
                    ])
                })
                .collect(),
        ));
        return;
    }
    println!("== Paper-claim checklist ==");
    let mut all_pass = true;
    for r in &rows {
        all_pass &= r.pass;
        println!(
            "[{}] {:<4} {}\n        measured: {}",
            if r.pass { "PASS" } else { "FAIL" },
            r.id,
            r.claim,
            r.measured
        );
    }
    println!();
    println!(
        "{} of {} claims reproduced",
        rows.iter().filter(|r| r.pass).count(),
        rows.len()
    );
    if !all_pass {
        std::process::exit(1);
    }
}

fn print_json(doc: Json) {
    print!("{}", doc.pretty());
}

fn figure(json: bool, title: &str, series: &[Series]) {
    if json {
        print_json(Json::Arr(
            series
                .iter()
                .map(|s| {
                    Json::obj([
                        ("label", Json::from(s.label.as_str())),
                        (
                            "points",
                            Json::Arr(
                                s.points
                                    .iter()
                                    .map(|p| {
                                        Json::obj([
                                            ("size", Json::from(p.size)),
                                            ("mbps", Json::Num(p.mbps)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ));
    } else {
        println!("== {title} ==");
        print!("{}", series_csv(series));
        println!();
        print!("{}", series_ascii(series, 40));
        println!();
    }
}
