//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--json] [--jobs N] [--no-cache] [--cache-dir DIR]
//!         [--metrics] <what>...
//!   what: fig4 fig5 fig6 fig7 scalars gamma coalescing fragmentation
//!         bonding syscall loss cpu load paths scaling reliability
//!         claims all
//! figures trace [scenario] [--size N] [--mtu M] [--seed S] [--out FILE]
//!         [--metrics] [--quick]
//!   scenario: fig7a (default) fig7b fig7a-lossy tcp
//! ```
//!
//! * `--quick` (alias `--smoke`) uses a reduced size grid.
//! * `--json` emits machine-readable output instead of CSV + ASCII charts.
//! * `--jobs N` runs experiment jobs on N worker threads (default: all
//!   cores). Results are bit-identical for every N.
//! * `--no-cache` / `--cache-dir DIR` control the content-addressed result
//!   cache (default `target/figures-cache/`); cached jobs are reused when
//!   the job configuration and cost-model constants are unchanged.
//! * `--metrics` also prints each figure's metric totals (drops,
//!   retransmits, peak switch queue depth).
//! * `trace` runs one traced message through the pipeline, writes Chrome
//!   trace-event JSON (load it at <https://ui.perfetto.dev>) and prints a
//!   per-stage breakdown.
//!
//! Every run (except `claims` and `trace`) also writes
//! `BENCH_figures.json`: wall clock and cache statistics per figure, the
//! speedup over a serial run of the executed jobs, and per-figure metric
//! totals.

use clic_bench::json::Json;
use clic_bench::render::{series_ascii, series_csv};
use clic_bench::runner::{run_jobs, RunReport, RunnerConfig};
use clic_cluster::experiments::{self, FigureKind, FigureOutput, ResultMap, Series, StageRow};
use clic_cluster::observe::{self, TraceScenario};

const USAGE: &str = "usage: figures [--quick|--smoke] [--json] [--jobs N] [--no-cache] \
[--cache-dir DIR] [--metrics] <what>...
  what: fig4 fig5 fig6 fig7 scalars gamma coalescing fragmentation
        bonding syscall loss cpu load paths scaling reliability chaos
        claims all (chaos is opt-in: not part of all)
   or: figures trace [fig7a|fig7b|fig7a-lossy|tcp] [--size N] [--mtu M]
        [--seed S] [--out FILE] [--metrics] [--quick]";

/// Per-figure totals of the `m.`-prefixed measurement keys every job
/// reports (schema v2).
#[derive(Debug, Clone, Copy, Default)]
struct MetricTotals {
    drops: f64,
    retransmits: f64,
    peak_switch_queue_depth: f64,
}

impl MetricTotals {
    fn from_results(results: &ResultMap) -> MetricTotals {
        let mut t = MetricTotals::default();
        for m in results.values() {
            t.drops += m.get("m.drops").unwrap_or(0.0);
            t.retransmits += m.get("m.retransmits").unwrap_or(0.0);
            t.peak_switch_queue_depth = t
                .peak_switch_queue_depth
                .max(m.get("m.peak_switch_queue_depth").unwrap_or(0.0));
        }
        t
    }

    fn merge(&mut self, other: &MetricTotals) {
        self.drops += other.drops;
        self.retransmits += other.retransmits;
        self.peak_switch_queue_depth = self
            .peak_switch_queue_depth
            .max(other.peak_switch_queue_depth);
    }

    fn json(&self) -> Json {
        Json::obj([
            ("drops", Json::Num(self.drops)),
            ("retransmits", Json::Num(self.retransmits)),
            (
                "peak_switch_queue_depth",
                Json::Num(self.peak_switch_queue_depth),
            ),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        run_trace(&args[1..]);
        return;
    }
    let mut quick = false;
    let mut json = false;
    let mut jobs: Option<usize> = None;
    let mut cache = true;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut metrics = false;
    let mut what: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "--smoke" => quick = true,
            "--json" => json = true,
            "--no-cache" => cache = false,
            "--metrics" => metrics = true,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => die("--jobs needs a positive integer"),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(dir.into()),
                None => die("--cache-dir needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => die(&format!("unknown flag '{other}'")),
            other => what.push(other.to_string()),
        }
    }
    if what.is_empty() || what.iter().any(|w| w == "all") {
        what = FigureKind::ALL
            .iter()
            .map(|k| k.name().to_string())
            .collect();
    }

    let sizes = if quick {
        experiments::quick_sizes()
    } else {
        experiments::paper_sizes()
    };
    let config = RunnerConfig {
        jobs: jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        cache_dir: cache.then(|| cache_dir.unwrap_or_else(RunnerConfig::default_cache_dir)),
    };

    let mut timings: Vec<(String, RunReport, MetricTotals)> = Vec::new();
    for item in &what {
        if item == "claims" {
            render_claims(json);
            continue;
        }
        let Some(kind) = FigureKind::from_name(item) else {
            eprintln!("unknown experiment '{item}'");
            std::process::exit(2);
        };
        let specs = kind.jobs(&sizes);
        let (results, report) = run_jobs(&specs, &config);
        let totals = MetricTotals::from_results(&results);
        render(json, kind, kind.assemble(&results, &sizes));
        if metrics && !json {
            println!(
                "[{}] metrics: drops={} retransmits={} peak_switch_queue_depth={}",
                kind.name(),
                totals.drops,
                totals.retransmits,
                totals.peak_switch_queue_depth
            );
            println!();
        }
        timings.push((kind.name().to_string(), report, totals));
    }

    if !timings.is_empty() {
        let path = "BENCH_figures.json";
        match std::fs::write(path, bench_report(quick, &config, &timings).pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// The `figures trace` subcommand: one traced message, any size and MTU.
fn run_trace(args: &[String]) {
    let mut scenario = TraceScenario::Fig7a;
    let mut size = 1400usize;
    let mut mtu = 1500usize;
    let mut seed = 0u64;
    let mut out = std::path::PathBuf::from("trace.json");
    let mut metrics = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // The trace run is a single message, so there is no reduced
            // grid; --quick is accepted for CLI symmetry with the figures.
            "--quick" | "--smoke" => {}
            "--metrics" => metrics = true,
            "--size" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => size = n,
                _ => die("--size needs a positive byte count"),
            },
            "--mtu" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => mtu = n,
                None => die("--mtu needs a byte count"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => die("--seed needs an integer"),
            },
            "--out" => match it.next() {
                Some(path) => out = path.into(),
                None => die("--out needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => die(&format!("unknown flag '{other}'")),
            other => match TraceScenario::parse(other) {
                Some(s) => scenario = s,
                None => die(&format!(
                    "unknown scenario '{other}' (expected fig7a, fig7b, fig7a-lossy or tcp)"
                )),
            },
        }
    }

    let t = observe::run_pipeline_trace(scenario, size, mtu, seed);
    println!(
        "== pipeline breakdown: {} {} B @ MTU {} ==",
        t.scenario.name(),
        t.size,
        t.mtu
    );
    print!("{}", observe::breakdown_table(&t.breakdown));
    println!();
    if metrics {
        print!("{}", t.metrics.dump());
        println!();
    }
    match std::fs::write(&out, &t.chrome_json) {
        Ok(()) => eprintln!(
            "wrote {} ({} spans; open in https://ui.perfetto.dev or chrome://tracing)",
            out.display(),
            t.spans.len()
        ),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

/// The `BENCH_figures.json` document: per-figure and total wall clock,
/// cache statistics, executed-work speedup over serial and metric totals.
fn bench_report(
    quick: bool,
    config: &RunnerConfig,
    timings: &[(String, RunReport, MetricTotals)],
) -> Json {
    let figure_entry = |name: &str, r: &RunReport, t: &MetricTotals| {
        Json::obj([
            ("name", Json::from(name)),
            ("jobs", Json::from(r.jobs.len())),
            ("cache_hits", Json::from(r.cache_hits())),
            ("cache_hit_rate", Json::Num(r.cache_hit_rate())),
            ("wall_secs", Json::Num(r.wall_secs)),
            ("serial_equiv_secs", Json::Num(r.serial_equiv_secs())),
            ("speedup_vs_serial", Json::Num(r.speedup_vs_serial())),
            ("metrics", t.json()),
        ])
    };
    let mut total = RunReport::default();
    let mut total_metrics = MetricTotals::default();
    for (_, r, t) in timings {
        total.merge(r);
        total_metrics.merge(t);
    }
    Json::obj([
        (
            "schema",
            Json::from(clic_cluster::jobs::MEASUREMENT_SCHEMA_VERSION as usize),
        ),
        ("grid", Json::from(if quick { "quick" } else { "paper" })),
        ("workers", Json::from(config.jobs)),
        // Recorded so speedup numbers can be interpreted: with more
        // workers than cores, per-job timings include preemption time
        // and `speedup_vs_serial` overstates the real wall-clock gain.
        (
            "host_cores",
            Json::from(std::thread::available_parallelism().map_or(1, |n| n.get())),
        ),
        ("cache_enabled", Json::from(config.cache_dir.is_some())),
        (
            "figures",
            Json::Arr(
                timings
                    .iter()
                    .map(|(name, r, t)| figure_entry(name, r, t))
                    .collect(),
            ),
        ),
        ("total", figure_entry("total", &total, &total_metrics)),
    ])
}

fn render(json: bool, kind: FigureKind, output: FigureOutput) {
    match output {
        FigureOutput::Series(series) => figure(json, kind.title(), &series),
        FigureOutput::Stages { a, b } => render_fig7(json, kind.title(), &a, &b),
        FigureOutput::Scalars(s) => render_scalars(json, kind.title(), &s),
        FigureOutput::Gamma(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("protocol", Json::from(r.protocol.as_str())),
                                ("latency_us", Json::Num(r.latency_us)),
                                ("bandwidth_mbps", Json::Num(r.bandwidth_mbps)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<16} {:>12} {:>16}",
                    "protocol", "latency(us)", "bandwidth(Mb/s)"
                );
                for r in rows {
                    println!(
                        "{:<16} {:>12.1} {:>16.1}",
                        r.protocol, r.latency_us, r.bandwidth_mbps
                    );
                }
                println!("(paper: CLIC 36 us / ~600 Mb/s; GAMMA 32 us (GA620) / 768-824 Mb/s)");
                println!();
            }
        }
        FigureOutput::Coalescing(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("usecs", Json::Num(r.usecs as f64)),
                                ("frames", Json::Num(r.frames as f64)),
                                ("mbps", Json::Num(r.mbps)),
                                ("irqs_per_kframe", Json::Num(r.irqs_per_kframe)),
                                ("latency_us", Json::Num(r.latency_us)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:>7} {:>7} {:>10} {:>14} {:>12}",
                    "usecs", "frames", "Mb/s", "irqs/kframe", "latency(us)"
                );
                for r in rows {
                    println!(
                        "{:>7} {:>7} {:>10.1} {:>14.1} {:>12.1}",
                        r.usecs, r.frames, r.mbps, r.irqs_per_kframe, r.latency_us
                    );
                }
                println!();
            }
        }
        FigureOutput::Bonding(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("width", Json::from(r.width)),
                                ("mbps_pci33", Json::Num(r.mbps_pci33)),
                                ("mbps_pci66", Json::Num(r.mbps_pci66)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:>6} {:>16} {:>16}",
                    "width", "PCI 33/32 Mb/s", "PCI 66/64 Mb/s"
                );
                for r in rows {
                    println!(
                        "{:>6} {:>16.1} {:>16.1}",
                        r.width, r.mbps_pci33, r.mbps_pci66
                    );
                }
                println!();
            }
        }
        FigureOutput::Syscall(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("flavour", Json::from(r.flavour.as_str())),
                                ("latency_us", Json::Num(r.latency_us)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                for r in rows {
                    println!("{:<12} {:>8.2} us one-way", r.flavour, r.latency_us);
                }
                println!();
            }
        }
        FigureOutput::Loss(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("loss", Json::Num(r.loss)),
                                ("mbps", Json::Num(r.mbps)),
                                ("retx_per_kpkt", Json::Num(r.retx_per_kpkt)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!("{:>8} {:>10} {:>14}", "loss", "Mb/s", "retx/kpkt");
                for r in rows {
                    println!("{:>8.3} {:>10.1} {:>14.2}", r.loss, r.mbps, r.retx_per_kpkt);
                }
                println!();
            }
        }
        FigureOutput::Cpu(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("stack", Json::from(r.stack.as_str())),
                                ("link_mbps", Json::Num(r.link_mbps as f64)),
                                ("mbps", Json::Num(r.mbps)),
                                ("pct_of_wire", Json::Num(r.pct_of_wire)),
                                ("sender_cpu", Json::Num(r.sender_cpu)),
                                ("receiver_cpu", Json::Num(r.receiver_cpu)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    "stack", "link Mb/s", "Mb/s", "% of wire", "tx CPU", "rx CPU"
                );
                for r in rows {
                    println!(
                        "{:<6} {:>10} {:>10.1} {:>9.1}% {:>9.0}% {:>9.0}%",
                        r.stack,
                        r.link_mbps,
                        r.mbps,
                        r.pct_of_wire,
                        r.sender_cpu * 100.0,
                        r.receiver_cpu * 100.0
                    );
                }
                println!();
            }
        }
        FigureOutput::Load(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("stack", Json::from(r.stack.as_str())),
                                ("loaded", Json::from(r.loaded)),
                                ("min_us", Json::Num(r.min_us)),
                                ("mean_us", Json::Num(r.mean_us)),
                                ("p99_us", Json::Num(r.p99_us)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<6} {:>8} {:>10} {:>10} {:>10}",
                    "stack", "loaded", "min (us)", "mean (us)", "p99 (us)"
                );
                for r in rows {
                    println!(
                        "{:<6} {:>8} {:>10.1} {:>10.1} {:>10.1}",
                        r.stack, r.loaded, r.min_us, r.mean_us, r.p99_us
                    );
                }
                println!();
            }
        }
        FigureOutput::Paths(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("path", Json::Num(r.path as f64)),
                                ("description", Json::from(r.description.as_str())),
                                ("link_mbps", Json::Num(r.link_mbps as f64)),
                                ("mbps", Json::Num(r.mbps)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<5} {:>10} {:>10}  description",
                    "path", "link Mb/s", "Mb/s"
                );
                for r in rows {
                    println!(
                        "{:<5} {:>10} {:>10.1}  {}",
                        r.path, r.link_mbps, r.mbps, r.description
                    );
                }
                println!();
            }
        }
        FigureOutput::Scaling(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("nodes", Json::from(r.nodes)),
                                ("aggregate_mbps", Json::Num(r.aggregate_mbps)),
                                ("per_node_mbps", Json::Num(r.per_node_mbps)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:>6} {:>16} {:>14}",
                    "nodes", "aggregate Mb/s", "per node Mb/s"
                );
                for r in rows {
                    println!(
                        "{:>6} {:>16.1} {:>14.1}",
                        r.nodes, r.aggregate_mbps, r.per_node_mbps
                    );
                }
                println!();
            }
        }
        FigureOutput::Reliability(rows) => {
            if json {
                print_json(Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("stack", Json::from(r.stack.as_str())),
                                ("mtu", Json::from(r.mtu)),
                                ("loss_pct", Json::Num(r.loss_pct)),
                                ("bursty", Json::from(r.bursty)),
                                ("mbps", Json::Num(r.mbps)),
                                ("mean_us", Json::Num(r.mean_us)),
                                ("p99_us", Json::Num(r.p99_us)),
                                ("retx", Json::Num(r.retx)),
                                ("drops", Json::Num(r.drops)),
                            ])
                        })
                        .collect(),
                ));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:<6} {:>6} {:>7} {:>8} {:>10} {:>10} {:>10} {:>7} {:>7}",
                    "stack",
                    "mtu",
                    "loss%",
                    "model",
                    "Mb/s",
                    "mean(us)",
                    "p99(us)",
                    "retx",
                    "drops"
                );
                for r in rows {
                    println!(
                        "{:<6} {:>6} {:>7} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>7.0} {:>7.0}",
                        r.stack,
                        r.mtu,
                        r.loss_pct,
                        if r.bursty { "burst" } else { "uniform" },
                        r.mbps,
                        r.mean_us,
                        r.p99_us,
                        r.retx,
                        r.drops
                    );
                }
                println!();
            }
        }
        FigureOutput::Chaos { soak, incast } => {
            if json {
                let soak_rows = Json::Arr(
                    soak.iter()
                        .map(|r| {
                            Json::obj([
                                ("seed", Json::Num(r.seed as f64)),
                                ("loss_pct", Json::Num(r.loss_pct)),
                                ("crashes", Json::from(r.crashes)),
                                ("flaps", Json::from(r.flaps)),
                                ("posted", Json::Num(r.posted)),
                                ("confirmed", Json::Num(r.confirmed)),
                                ("failed", Json::Num(r.failed)),
                                ("delivered", Json::Num(r.delivered)),
                                ("err_peer_dead", Json::Num(r.err_peer_dead)),
                                ("err_stale_epoch", Json::Num(r.err_stale_epoch)),
                                ("err_max_retries", Json::Num(r.err_max_retries)),
                                ("eras", Json::Num(r.eras)),
                                ("stale_epoch_drops", Json::Num(r.stale_epoch_drops)),
                                ("retx", Json::Num(r.retx)),
                            ])
                        })
                        .collect(),
                );
                let incast_rows = Json::Arr(
                    incast
                        .iter()
                        .map(|r| {
                            Json::obj([
                                (
                                    "budget_bytes",
                                    r.budget.map_or(Json::Null, Json::from),
                                ),
                                ("senders", Json::from(r.senders)),
                                ("delivered", Json::Num(r.delivered)),
                                ("mean_us", Json::Num(r.mean_us)),
                                ("p99_us", Json::Num(r.p99_us)),
                                ("peak_buffered_bytes", Json::Num(r.peak_buffered_bytes)),
                                ("elapsed_us", Json::Num(r.elapsed_us)),
                            ])
                        })
                        .collect(),
                );
                print_json(Json::obj([("soak", soak_rows), ("incast", incast_rows)]));
            } else {
                println!("== {} ==", kind.title());
                println!(
                    "{:>4} {:>6} {:>7} {:>5} {:>7} {:>9} {:>7} {:>9} {:>5} {:>5} {:>5} {:>5} {:>10} {:>6}",
                    "seed",
                    "loss%",
                    "crashes",
                    "flaps",
                    "posted",
                    "confirmed",
                    "failed",
                    "delivered",
                    "pdead",
                    "stale",
                    "maxr",
                    "eras",
                    "staledrops",
                    "retx"
                );
                for r in soak {
                    println!(
                        "{:>4} {:>6} {:>7} {:>5} {:>7.0} {:>9.0} {:>7.0} {:>9.0} {:>5.0} {:>5.0} {:>5.0} {:>5.0} {:>10.0} {:>6.0}",
                        r.seed,
                        r.loss_pct,
                        r.crashes,
                        r.flaps,
                        r.posted,
                        r.confirmed,
                        r.failed,
                        r.delivered,
                        r.err_peer_dead,
                        r.err_stale_epoch,
                        r.err_max_retries,
                        r.eras,
                        r.stale_epoch_drops,
                        r.retx
                    );
                }
                println!();
                println!("-- 4-to-1 incast into a slow consumer --");
                println!(
                    "{:<10} {:>9} {:>10} {:>10} {:>12} {:>12}",
                    "budget", "delivered", "mean(us)", "p99(us)", "peak buf(B)", "elapsed(us)"
                );
                for r in incast {
                    let budget = r
                        .budget
                        .map(|b| format!("{}K", b / 1024))
                        .unwrap_or_else(|| "none".into());
                    println!(
                        "{:<10} {:>9.0} {:>10.1} {:>10.1} {:>12.0} {:>12.1}",
                        budget,
                        r.delivered,
                        r.mean_us,
                        r.p99_us,
                        r.peak_buffered_bytes,
                        r.elapsed_us
                    );
                }
                println!();
            }
        }
    }
}

fn render_fig7(json: bool, title: &str, a: &[StageRow], b: &[StageRow]) {
    if json {
        let stages = |rows: &[StageRow]| {
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("stage", Json::from(r.stage.as_str())),
                            ("us", Json::Num(r.us)),
                        ])
                    })
                    .collect(),
            )
        };
        print_json(Json::obj([("fig7a", stages(a)), ("fig7b", stages(b))]));
        return;
    }
    println!("== {title} ==");
    println!("{:<18} {:>10} {:>10}", "stage", "7a (us)", "7b (us)");
    let stage_names: Vec<&String> = a.iter().map(|r| &r.stage).collect();
    for name in stage_names {
        let va = a.iter().find(|r| &r.stage == name).map(|r| r.us);
        let vb = b.iter().find(|r| &r.stage == name).map(|r| r.us);
        println!(
            "{:<18} {:>10} {:>10}",
            name,
            va.map(|v| format!("{v:.2}")).unwrap_or_default(),
            vb.map(|v| format!("{v:.2}")).unwrap_or("-".into()),
        );
    }
    let total = |rows: &[StageRow]| -> f64 {
        rows.iter()
            .filter(|r| {
                ["driver_rx", "bottom_half", "clic_module_rx", "copy_to_user"]
                    .contains(&r.stage.as_str())
            })
            .map(|r| r.us)
            .sum()
    };
    println!(
        "receive-path total: 7a = {:.1} us, 7b = {:.1} us (paper: ~20 -> ~5)",
        total(a),
        total(b)
    );
    println!();
}

fn render_scalars(json: bool, title: &str, s: &experiments::Scalars) {
    if json {
        print_json(Json::obj([
            ("zero_byte_latency_us", Json::Num(s.zero_byte_latency_us)),
            (
                "clic_asymptote_9000_mbps",
                Json::Num(s.clic_asymptote_9000_mbps),
            ),
            (
                "clic_asymptote_1500_mbps",
                Json::Num(s.clic_asymptote_1500_mbps),
            ),
            (
                "tcp_asymptote_9000_mbps",
                Json::Num(s.tcp_asymptote_9000_mbps),
            ),
            (
                "clic_half_bandwidth_bytes_1500",
                Json::from(s.clic_half_bandwidth_bytes_1500),
            ),
            (
                "clic_half_bandwidth_bytes_9000",
                Json::from(s.clic_half_bandwidth_bytes_9000),
            ),
            (
                "tcp_half_bandwidth_bytes",
                Json::from(s.tcp_half_bandwidth_bytes),
            ),
        ]));
        return;
    }
    println!("== {title} ==");
    println!(
        "0-byte one-way latency : {:7.1} us   (paper: 36)",
        s.zero_byte_latency_us
    );
    println!(
        "CLIC asymptote MTU9000 : {:7.1} Mb/s (paper: ~600)",
        s.clic_asymptote_9000_mbps
    );
    println!(
        "CLIC asymptote MTU1500 : {:7.1} Mb/s (paper: ~450)",
        s.clic_asymptote_1500_mbps
    );
    println!(
        "TCP  asymptote MTU9000 : {:7.1} Mb/s (paper: CLIC > 2x TCP)",
        s.tcp_asymptote_9000_mbps
    );
    println!(
        "CLIC 50%-of-peak (1500): {:7} B    (paper: ~4 KB)",
        s.clic_half_bandwidth_bytes_1500
    );
    println!(
        "CLIC 50%-of-peak (9000): {:7} B",
        s.clic_half_bandwidth_bytes_9000
    );
    println!(
        "TCP  50%-of-peak       : {:7} B    (paper: ~16 KB)",
        s.tcp_half_bandwidth_bytes
    );
    println!();
}

fn render_claims(json: bool) {
    let rows = experiments::claims();
    if json {
        print_json(Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("id", Json::from(r.id.as_str())),
                        ("claim", Json::from(r.claim.as_str())),
                        ("measured", Json::from(r.measured.as_str())),
                        ("pass", Json::from(r.pass)),
                    ])
                })
                .collect(),
        ));
        return;
    }
    println!("== Paper-claim checklist ==");
    let mut all_pass = true;
    for r in &rows {
        all_pass &= r.pass;
        println!(
            "[{}] {:<4} {}\n        measured: {}",
            if r.pass { "PASS" } else { "FAIL" },
            r.id,
            r.claim,
            r.measured
        );
    }
    println!();
    println!(
        "{} of {} claims reproduced",
        rows.iter().filter(|r| r.pass).count(),
        rows.len()
    );
    if !all_pass {
        std::process::exit(1);
    }
}

fn print_json(doc: Json) {
    print!("{}", doc.pretty());
}

fn figure(json: bool, title: &str, series: &[Series]) {
    if json {
        print_json(Json::Arr(
            series
                .iter()
                .map(|s| {
                    Json::obj([
                        ("label", Json::from(s.label.as_str())),
                        (
                            "points",
                            Json::Arr(
                                s.points
                                    .iter()
                                    .map(|p| {
                                        Json::obj([
                                            ("size", Json::from(p.size)),
                                            ("mbps", Json::Num(p.mbps)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ));
    } else {
        println!("== {title} ==");
        print!("{}", series_csv(series));
        println!();
        print!("{}", series_ascii(series, 40));
        println!();
    }
}
