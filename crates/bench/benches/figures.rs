//! Criterion benchmarks: one per paper figure/table + ablations.
//!
//! Each bench pushes the figure's job set through the same runner the
//! `figures` binary uses (cache disabled so real work is measured), so
//! `cargo bench` both regenerates every result and tracks the simulator's
//! own performance. `parallel_runner_quick_grid` measures the whole quick
//! grid end to end on all cores, the headline number `BENCH_figures.json`
//! reports.

use clic_bench::runner::{run_jobs, RunnerConfig};
use clic_cluster::experiments::FigureKind;
use clic_cluster::jobs::JobSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn sizes() -> Vec<usize> {
    clic_cluster::experiments::quick_sizes()
}

/// Run one figure's jobs through the (uncached, serial) runner and
/// assemble the output, as the `figures` binary does.
fn run_figure(kind: FigureKind) {
    let sizes = sizes();
    let (results, _) = run_jobs(&kind.jobs(&sizes), &RunnerConfig::uncached(1));
    let _ = kind.assemble(&results, &sizes);
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_clic_mtu_x_copy", |b| {
        b.iter(|| run_figure(FigureKind::Fig4))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_clic_vs_tcp", |b| {
        b.iter(|| run_figure(FigureKind::Fig5))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_middleware", |b| {
        b.iter(|| run_figure(FigureKind::Fig6))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_stage_breakdown", |b| {
        b.iter(|| run_figure(FigureKind::Fig7))
    });
}

fn bench_gamma_table(c: &mut Criterion) {
    c.bench_function("gamma_comparison_table", |b| {
        b.iter(|| run_figure(FigureKind::Gamma))
    });
}

fn bench_ablations(c: &mut Criterion) {
    let cases = [
        ("ablation_coalescing", FigureKind::Coalescing),
        ("ablation_fragmentation", FigureKind::Fragmentation),
        ("ablation_bonding", FigureKind::Bonding),
        ("ablation_syscall", FigureKind::Syscall),
        ("ablation_loss", FigureKind::Loss),
        ("ablation_cpu", FigureKind::Cpu),
        ("ablation_latency_under_load", FigureKind::Load),
        ("ablation_paths", FigureKind::Paths),
        ("ablation_scaling", FigureKind::Scaling),
    ];
    for (name, kind) in cases {
        c.bench_function(name, |b| b.iter(|| run_figure(kind)));
    }
}

/// The whole quick grid through the parallel runner on all cores —
/// the wall-clock number that the `--jobs` flag exists to improve.
fn bench_parallel_runner(c: &mut Criterion) {
    let sizes = sizes();
    let specs: Vec<JobSpec> = FigureKind::ALL
        .into_iter()
        .flat_map(|k| k.jobs(&sizes))
        .collect();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    c.bench_function("parallel_runner_quick_grid", |b| {
        b.iter(|| run_jobs(&specs, &RunnerConfig::uncached(workers)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_gamma_table,
        bench_ablations, bench_parallel_runner
}
criterion_main!(figures);
