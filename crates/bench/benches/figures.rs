//! Criterion benchmarks: one per paper figure/table + ablations.
//!
//! Each bench runs the corresponding experiment on the reduced size grid,
//! so `cargo bench` both regenerates every result and tracks the
//! simulator's own performance.

use criterion::{criterion_group, criterion_main, Criterion};

fn sizes() -> Vec<usize> {
    clic_cluster::experiments::quick_sizes()
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_clic_mtu_x_copy", |b| {
        b.iter(|| clic_cluster::experiments::fig4(&sizes()))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_clic_vs_tcp", |b| {
        b.iter(|| clic_cluster::experiments::fig5(&sizes()))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_middleware", |b| {
        b.iter(|| clic_cluster::experiments::fig6(&sizes()))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_stage_breakdown", |b| {
        b.iter(|| {
            (
                clic_cluster::experiments::fig7(false),
                clic_cluster::experiments::fig7(true),
            )
        })
    });
}

fn bench_gamma_table(c: &mut Criterion) {
    c.bench_function("gamma_comparison_table", |b| {
        b.iter(|| clic_cluster::experiments::gamma_table(&sizes()))
    });
}

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("ablation_coalescing", |b| {
        b.iter(clic_cluster::experiments::ablation_coalescing)
    });
    c.bench_function("ablation_fragmentation", |b| {
        b.iter(|| clic_cluster::experiments::ablation_fragmentation(&sizes()))
    });
    c.bench_function("ablation_bonding", |b| {
        b.iter(clic_cluster::experiments::ablation_bonding)
    });
    c.bench_function("ablation_syscall", |b| {
        b.iter(clic_cluster::experiments::ablation_syscall)
    });
    c.bench_function("ablation_loss", |b| {
        b.iter(clic_cluster::experiments::ablation_loss)
    });
    c.bench_function("ablation_cpu", |b| {
        b.iter(clic_cluster::experiments::ablation_cpu)
    });
    c.bench_function("ablation_latency_under_load", |b| {
        b.iter(clic_cluster::experiments::ablation_latency_under_load)
    });
    c.bench_function("ablation_paths", |b| {
        b.iter(clic_cluster::experiments::ablation_paths)
    });
    c.bench_function("ablation_scaling", |b| {
        b.iter(clic_cluster::experiments::ablation_scaling)
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_gamma_table, bench_ablations
}
criterion_main!(figures);
