//! Microbenchmarks of the DES engine: raw event throughput and the cost of
//! the contended-resource abstractions everything else is built on.

use clic_sim::{Cpu, CpuClass, SerialResource, Sim, SimDuration};
use criterion::{criterion_group, criterion_main, Criterion};

/// Schedule-and-drain of a long chain of bare events on the
/// allocation-free fast path (`schedule_arg_in`).
fn bench_event_chain(c: &mut Criterion) {
    c.bench_function("engine_event_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            fn tick(sim: &mut Sim, left: u64) {
                if left > 0 {
                    sim.schedule_arg_in(SimDuration::from_ns(10), tick, left - 1);
                }
            }
            tick(&mut sim, 100_000);
            sim.run();
            sim.events_executed()
        })
    });
}

/// The same chain through boxed closures: isolates the cost of the
/// per-event allocation the fast path avoids.
fn bench_event_chain_boxed(c: &mut Criterion) {
    c.bench_function("engine_event_chain_100k_boxed", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            fn tick(sim: &mut Sim, left: u32) {
                if left > 0 {
                    sim.schedule_in(SimDuration::from_ns(10), move |s| tick(s, left - 1));
                }
            }
            tick(&mut sim, 100_000);
            sim.run();
            sim.events_executed()
        })
    });
}

/// Fan-out of many simultaneous events (queue stress) on the
/// allocation-free fast path.
fn bench_event_fanout(c: &mut Criterion) {
    c.bench_function("engine_fanout_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            fn nop(_: &mut Sim) {}
            for i in 0..100_000u64 {
                sim.schedule_fn_in(SimDuration::from_ns(i % 1000), nop);
            }
            sim.run();
            sim.events_executed()
        })
    });
}

/// The same fan-out through boxed closures.
fn bench_event_fanout_boxed(c: &mut Criterion) {
    c.bench_function("engine_fanout_100k_boxed", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            for i in 0..100_000u64 {
                sim.schedule_in(SimDuration::from_ns(i % 1000), |_| {});
            }
            sim.run();
            sim.events_executed()
        })
    });
}

/// CPU resource with mixed-priority work.
fn bench_cpu_resource(c: &mut Criterion) {
    c.bench_function("cpu_resource_50k_items", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            let cpu = Cpu::new();
            for i in 0..50_000u32 {
                let class = if i % 4 == 0 {
                    CpuClass::Irq
                } else {
                    CpuClass::Task
                };
                Cpu::run(&cpu, &mut sim, class, SimDuration::from_ns(100), |_| {});
            }
            sim.run();
            let n = cpu.borrow().items_run();
            n
        })
    });
}

/// Serial bus resource under a queue of transactions.
fn bench_serial_resource(c: &mut Criterion) {
    c.bench_function("serial_resource_50k_txns", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            let bus = SerialResource::new("bench");
            for _ in 0..50_000 {
                SerialResource::acquire(&bus, &mut sim, SimDuration::from_ns(80), |_| {});
            }
            sim.run();
            let n = bus.borrow().items();
            n
        })
    });
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = bench_event_chain, bench_event_chain_boxed, bench_event_fanout,
        bench_event_fanout_boxed, bench_cpu_resource, bench_serial_resource
}
criterion_main!(engine);
