//! NIC-resident collective engine.
//!
//! Models the Yu/Buntinas/Panda approach ("Efficient and Scalable Barrier
//! over Quadrics and Myrinet with a New NIC-Based Collective Message
//! Passing Protocol"): barrier, broadcast and reduction run *on the NIC*,
//! in firmware, without ever raising a host interrupt. The host posts one
//! descriptor per collective and gets one completion callback; everything
//! in between — the k-ary combining tree up, the multicast distribution
//! down — is NIC-to-NIC traffic the OS never sees. That is the
//! cluster-scale extension of CLIC's thesis: where CLIC moved the
//! transport out of the OS, the collective engine moves the *coordination*
//! out of the host entirely.
//!
//! The engine here is the pure state machine: it consumes stimuli (host
//! descriptors and decoded wire messages) and emits actions (frames to
//! send, completions to deliver). All timing — the per-message firmware
//! processing delay, the wire — is applied by the plumbing in
//! [`crate::nic`], so this module is directly unit-testable.
//!
//! Protocol shape, per operation class (barrier / reduce / bcast), each
//! with its own sequence space so back-to-back collectives never mix:
//!
//! * **up phase** (barrier, allreduce): leaves send an arrival/partial to
//!   their tree parent; interior nodes combine children + their own
//!   contribution and forward up; rank 0 is the root.
//! * **down phase** (all classes): the root emits *one* Ethernet
//!   multicast frame to the group address — the switch fabric's existing
//!   flood path replicates it to every member in a single shot (loop-free
//!   on multi-switch fabrics thanks to the spanning-tree flood membership
//!   in `clic-ethernet::topology`).

use bytes::Bytes;
use clic_ethernet::MacAddr;
use clic_sim::{Sim, SimDuration};
use std::collections::BTreeMap;

/// Completion callback for a barrier.
pub type BarrierDone = Box<dyn FnOnce(&mut Sim)>;
/// Completion callback carrying the allreduce result.
pub type ValueDone = Box<dyn FnOnce(&mut Sim, u64)>;
/// Completion callback carrying the broadcast payload.
pub type DataDone = Box<dyn FnOnce(&mut Sim, Bytes)>;

/// Static configuration of one NIC's collective engine.
#[derive(Debug, Clone)]
pub struct CollConfig {
    /// Ethernet multicast group id used for the down phase
    /// ([`MacAddr::multicast_group`]); every member NIC joins it.
    pub group: u32,
    /// Member station addresses, indexed by rank.
    pub members: Vec<MacAddr>,
    /// This NIC's rank in `members`.
    pub rank: usize,
    /// Fan-out of the combining tree (children per interior node).
    pub fanout: usize,
    /// Firmware processing time charged per consumed or emitted message
    /// (the NIC processor is slow; Yu et al. measure a few µs per hop).
    pub proc_delay: SimDuration,
    /// Pipeline-trace id stamped on engine frames and instants
    /// (0 = untraced).
    pub trace: u64,
}

impl CollConfig {
    /// Engine config with the defaults the scale experiments use: 4-ary
    /// combining tree, 1.5 µs firmware processing per message, untraced.
    pub fn new(group: u32, members: Vec<MacAddr>, rank: usize) -> CollConfig {
        assert!(rank < members.len(), "rank out of range");
        CollConfig {
            group,
            members,
            rank,
            fanout: 4,
            proc_delay: SimDuration::from_ns(1_500),
            trace: 0,
        }
    }

    /// The multicast address of the down phase.
    pub fn group_mac(&self) -> MacAddr {
        MacAddr::multicast_group(self.group)
    }

    /// Tree parent of `rank` (none for the root, rank 0).
    pub fn parent(&self, rank: usize) -> Option<usize> {
        if rank == 0 {
            None
        } else {
            Some((rank - 1) / self.fanout)
        }
    }

    /// Number of tree children of `rank`.
    pub fn child_count(&self, rank: usize) -> usize {
        let first = rank * self.fanout + 1;
        let n = self.members.len();
        n.saturating_sub(first).min(self.fanout)
    }
}

/// One decoded collective control message (the payload of an
/// `EtherType::COLL` frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollMsg {
    /// Barrier up phase: the sender's whole subtree has arrived.
    Arrive {
        /// Barrier sequence number.
        seq: u32,
    },
    /// Barrier down phase (multicast): everyone arrived, proceed.
    Release {
        /// Barrier sequence number.
        seq: u32,
    },
    /// Allreduce up phase: partial sum of the sender's subtree.
    Combine {
        /// Reduce sequence number.
        seq: u32,
        /// Subtree partial sum.
        value: u64,
    },
    /// Allreduce down phase (multicast): the global sum.
    Result {
        /// Reduce sequence number.
        seq: u32,
        /// Global sum.
        value: u64,
    },
    /// Broadcast payload (multicast straight from the root).
    Bcast {
        /// Bcast sequence number.
        seq: u32,
        /// Broadcast bytes.
        data: Bytes,
    },
}

impl CollMsg {
    /// Wire-encode into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(16);
        match self {
            CollMsg::Arrive { seq } => {
                out.push(1);
                out.extend_from_slice(&seq.to_be_bytes());
            }
            CollMsg::Release { seq } => {
                out.push(2);
                out.extend_from_slice(&seq.to_be_bytes());
            }
            CollMsg::Combine { seq, value } => {
                out.push(3);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&value.to_be_bytes());
            }
            CollMsg::Result { seq, value } => {
                out.push(4);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&value.to_be_bytes());
            }
            CollMsg::Bcast { seq, data } => {
                out.push(5);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(data);
            }
        }
        Bytes::from(out)
    }

    /// Decode a frame payload (ignoring any minimum-frame padding past the
    /// message body). Returns `None` for malformed payloads.
    pub fn decode(payload: &[u8]) -> Option<CollMsg> {
        let (&op, rest) = payload.split_first()?;
        let seq = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?);
        let val =
            |b: &[u8]| -> Option<u64> { Some(u64::from_be_bytes(b.get(4..12)?.try_into().ok()?)) };
        match op {
            1 => Some(CollMsg::Arrive { seq }),
            2 => Some(CollMsg::Release { seq }),
            3 => Some(CollMsg::Combine {
                seq,
                value: val(rest)?,
            }),
            4 => Some(CollMsg::Result {
                seq,
                value: val(rest)?,
            }),
            5 => Some(CollMsg::Bcast {
                seq,
                data: Bytes::copy_from_slice(rest.get(4..)?),
            }),
            _ => None,
        }
    }

    /// Whether this message travels the up phase (towards the root). Down
    /// messages are the multicast distribution.
    pub fn is_up(&self) -> bool {
        matches!(self, CollMsg::Arrive { .. } | CollMsg::Combine { .. })
    }
}

/// A stimulus the engine reacts to.
pub enum CollStimulus {
    /// Host posted a barrier descriptor.
    Barrier(BarrierDone),
    /// Host posted an allreduce descriptor with its contribution.
    Allreduce(u64, ValueDone),
    /// Host posted a broadcast descriptor: the data when this rank is
    /// `root`, otherwise a completion awaiting the data.
    Bcast {
        /// Broadcasting rank.
        root: usize,
        /// Payload (required iff this rank is the root).
        data: Option<Bytes>,
        /// Completion, fired with the payload on every member.
        done: DataDone,
    },
    /// A collective control frame arrived from the wire.
    Msg(CollMsg),
}

/// An action the plumbing must carry out for the engine.
pub enum CollAction {
    /// Put a control frame on the wire.
    Send {
        /// Destination station or group address.
        dst: MacAddr,
        /// The message.
        msg: CollMsg,
    },
    /// Fire a barrier completion.
    CompleteBarrier(BarrierDone),
    /// Fire an allreduce completion with the global sum.
    CompleteValue(ValueDone, u64),
    /// Fire a broadcast completion with the payload.
    CompleteData(DataDone, Bytes),
}

/// Per-operation in-flight state. An entry is created by whichever
/// stimulus shows up first — a child's message can outrun the local host
/// descriptor and vice versa — and retired on completion.
#[derive(Default)]
struct Pending {
    child_msgs: usize,
    partial: u64,
    local: Option<u64>,
    partial_data: Option<Bytes>,
    barrier_done: Option<BarrierDone>,
    value_done: Option<ValueDone>,
    data_done: Option<DataDone>,
}

/// Operation classes, each with an independent sequence space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Class {
    Barrier,
    Reduce,
    Bcast,
}

/// The NIC-resident collective state machine.
///
/// Pure: [`CollEngine::step`] maps a stimulus to the actions it implies;
/// the caller owns all timing. The doc-test drives a 2-member group by
/// hand, playing both NICs:
///
/// ```
/// use clic_hw::coll::{CollAction, CollConfig, CollEngine, CollMsg, CollStimulus};
/// use clic_ethernet::MacAddr;
///
/// let members = vec![MacAddr::for_node(0, 0), MacAddr::for_node(1, 0)];
/// let mut root = CollEngine::new(CollConfig::new(7, members.clone(), 0));
/// let mut leaf = CollEngine::new(CollConfig::new(7, members, 1));
///
/// // The leaf's host enters the barrier: its NIC sends ARRIVE to rank 0.
/// let acts = leaf.step(CollStimulus::Barrier(Box::new(|_| {})));
/// let arrive = match &acts[..] {
///     [CollAction::Send { dst, msg }] => {
///         assert_eq!(*dst, MacAddr::for_node(0, 0));
///         msg.clone()
///     }
///     _ => panic!("expected one send"),
/// };
///
/// // Root host enters, then the ARRIVE lands: the root multicasts
/// // RELEASE to the group and completes its own barrier locally.
/// let first = root.step(CollStimulus::Barrier(Box::new(|_| {})));
/// assert!(first.is_empty(), "root still waits for its child");
/// let acts = root.step(CollStimulus::Msg(arrive));
/// assert!(matches!(
///     &acts[..],
///     [
///         CollAction::Send { dst, msg: CollMsg::Release { seq: 0 } },
///         CollAction::CompleteBarrier(_),
///     ] if dst.is_multicast()
/// ));
/// ```
pub struct CollEngine {
    config: CollConfig,
    next_seq: BTreeMap<Class, u32>,
    pending: BTreeMap<(Class, u32), Pending>,
}

impl CollEngine {
    /// Engine for one member NIC.
    pub fn new(config: CollConfig) -> CollEngine {
        assert!(config.fanout >= 1, "fanout must be at least 1");
        assert!(!config.members.is_empty());
        CollEngine {
            config,
            next_seq: BTreeMap::new(),
            pending: BTreeMap::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CollConfig {
        &self.config
    }

    /// Advance the state machine by one stimulus.
    pub fn step(&mut self, stimulus: CollStimulus) -> Vec<CollAction> {
        match stimulus {
            CollStimulus::Barrier(done) => {
                let seq = self.take_seq(Class::Barrier);
                let p = self.pending.entry((Class::Barrier, seq)).or_default();
                p.local = Some(0);
                p.barrier_done = Some(done);
                self.try_complete_up(Class::Barrier, seq)
            }
            CollStimulus::Allreduce(value, done) => {
                let seq = self.take_seq(Class::Reduce);
                let p = self.pending.entry((Class::Reduce, seq)).or_default();
                p.local = Some(value);
                p.value_done = Some(done);
                self.try_complete_up(Class::Reduce, seq)
            }
            CollStimulus::Bcast { root, data, done } => {
                let seq = self.take_seq(Class::Bcast);
                if root == self.config.rank {
                    let data = match data {
                        Some(d) => d,
                        None => panic!("bcast root must supply the payload"),
                    };
                    // One multicast does the whole down phase; the root's
                    // own completion is local (its NIC already has the
                    // bytes — the switch never hairpins the flood back).
                    vec![
                        CollAction::Send {
                            dst: self.config.group_mac(),
                            msg: CollMsg::Bcast {
                                seq,
                                data: data.clone(),
                            },
                        },
                        CollAction::CompleteData(done, data),
                    ]
                } else {
                    assert!(data.is_none(), "only the bcast root supplies data");
                    let p = self.pending.entry((Class::Bcast, seq)).or_default();
                    p.data_done = Some(done);
                    // The multicast may already have landed.
                    if let Some(bytes) = p.partial_data.take() {
                        let done = match p.data_done.take() {
                            Some(d) => d,
                            None => return Vec::new(),
                        };
                        self.pending.remove(&(Class::Bcast, seq));
                        vec![CollAction::CompleteData(done, bytes)]
                    } else {
                        Vec::new()
                    }
                }
            }
            CollStimulus::Msg(msg) => self.on_msg(msg),
        }
    }

    fn on_msg(&mut self, msg: CollMsg) -> Vec<CollAction> {
        match msg {
            CollMsg::Arrive { seq } => {
                let p = self.pending.entry((Class::Barrier, seq)).or_default();
                p.child_msgs += 1;
                self.try_complete_up(Class::Barrier, seq)
            }
            CollMsg::Combine { seq, value } => {
                let p = self.pending.entry((Class::Reduce, seq)).or_default();
                p.child_msgs += 1;
                p.partial = p.partial.wrapping_add(value);
                self.try_complete_up(Class::Reduce, seq)
            }
            CollMsg::Release { seq } => {
                let Some(mut p) = self.pending.remove(&(Class::Barrier, seq)) else {
                    return Vec::new();
                };
                match p.barrier_done.take() {
                    Some(done) => vec![CollAction::CompleteBarrier(done)],
                    None => Vec::new(),
                }
            }
            CollMsg::Result { seq, value } => {
                let Some(mut p) = self.pending.remove(&(Class::Reduce, seq)) else {
                    return Vec::new();
                };
                match p.value_done.take() {
                    Some(done) => vec![CollAction::CompleteValue(done, value)],
                    None => Vec::new(),
                }
            }
            CollMsg::Bcast { seq, data } => {
                let p = self.pending.entry((Class::Bcast, seq)).or_default();
                match p.data_done.take() {
                    Some(done) => {
                        self.pending.remove(&(Class::Bcast, seq));
                        vec![CollAction::CompleteData(done, data)]
                    }
                    None => {
                        // Host has not posted yet: stash the payload.
                        p.partial_data = Some(data);
                        Vec::new()
                    }
                }
            }
        }
    }

    /// If this node's subtree is fully accounted for, forward up (or, at
    /// the root, kick off the down phase).
    fn try_complete_up(&mut self, class: Class, seq: u32) -> Vec<CollAction> {
        let rank = self.config.rank;
        let need = self.config.child_count(rank);
        let ready = {
            let Some(p) = self.pending.get(&(class, seq)) else {
                return Vec::new();
            };
            p.local.is_some() && p.child_msgs >= need
        };
        if !ready {
            return Vec::new();
        }
        match self.config.parent(rank) {
            Some(parent) => {
                let dst = self.config.members[parent];
                let p = match self.pending.get(&(class, seq)) {
                    Some(p) => p,
                    None => return Vec::new(),
                };
                let msg = match class {
                    Class::Barrier => CollMsg::Arrive { seq },
                    Class::Reduce => CollMsg::Combine {
                        seq,
                        value: p.partial.wrapping_add(p.local.unwrap_or(0)),
                    },
                    Class::Bcast => return Vec::new(),
                };
                // Keep the pending entry: the down-phase multicast still
                // has to land here to complete the local operation.
                vec![CollAction::Send { dst, msg }]
            }
            None => {
                // Root: everyone arrived — multicast the down phase and
                // complete locally (the flood never hairpins back).
                let Some(mut p) = self.pending.remove(&(class, seq)) else {
                    return Vec::new();
                };
                let group = self.config.group_mac();
                match class {
                    Class::Barrier => {
                        let mut acts = vec![CollAction::Send {
                            dst: group,
                            msg: CollMsg::Release { seq },
                        }];
                        if let Some(done) = p.barrier_done.take() {
                            acts.push(CollAction::CompleteBarrier(done));
                        }
                        acts
                    }
                    Class::Reduce => {
                        let total = p.partial.wrapping_add(p.local.unwrap_or(0));
                        let mut acts = vec![CollAction::Send {
                            dst: group,
                            msg: CollMsg::Result { seq, value: total },
                        }];
                        if let Some(done) = p.value_done.take() {
                            acts.push(CollAction::CompleteValue(done, total));
                        }
                        acts
                    }
                    Class::Bcast => Vec::new(),
                }
            }
        }
    }

    fn take_seq(&mut self, class: Class) -> u32 {
        let seq = self.next_seq.entry(class).or_insert(0);
        let s = *seq;
        // lint:allow(time-overflow, reason="u32 per-class collective counter; 2^32 collectives exceed any run")
        *seq += 1;
        s
    }
}
