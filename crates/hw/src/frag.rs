//! Fragmentation-offload shim header.
//!
//! §2 of the paper describes NIC-level fragmentation (as prototyped on the
//! Alteon AceNIC): the host hands the NIC packets *larger* than the link
//! MTU; the NIC splits them to MTU-sized frames and the receiving NIC
//! reassembles before interrupting the host. The paper leaves it out of
//! CLIC to preserve driver portability and flags it as future work — we
//! implement it behind [`crate::NicConfig::tx_frag_offload`] and benchmark
//! it as ablation B.
//!
//! Fragments carry an 8-byte shim ahead of the payload slice:
//!
//! ```text
//! +--------+--------+--------+--------+
//! |        packet id (u32be)          |
//! +--------+--------+-----------------+
//! | index  | count  | ethertype (u16) |
//! +--------+--------+-----------------+
//! ```
//!
//! The trailing u16 preserves the original EtherType so the receiving NIC
//! can hand the reassembled packet to the right protocol.

use bytes::{BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// Size of the shim header, bytes.
pub const FRAG_HEADER: usize = 8;

/// A parsed fragment shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragHeader {
    /// Identifies the original oversized packet.
    pub packet_id: u32,
    /// Position of this fragment (0-based).
    pub index: u8,
    /// Total fragments of the packet.
    pub count: u8,
    /// EtherType of the original (unfragmented) packet.
    pub ethertype: u16,
}

impl FragHeader {
    /// Serialize the shim.
    pub fn encode(&self) -> [u8; FRAG_HEADER] {
        let mut out = [0u8; FRAG_HEADER];
        out[0..4].copy_from_slice(&self.packet_id.to_be_bytes());
        out[4] = self.index;
        out[5] = self.count;
        out[6..8].copy_from_slice(&self.ethertype.to_be_bytes());
        out
    }

    /// Parse the shim from the front of a fragment payload.
    pub fn decode(buf: &[u8]) -> Option<(FragHeader, Bytes)> {
        if buf.len() < FRAG_HEADER {
            return None;
        }
        let packet_id = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let header = FragHeader {
            packet_id,
            index: buf[4],
            count: buf[5],
            ethertype: u16::from_be_bytes([buf[6], buf[7]]),
        };
        if header.count == 0 || header.index >= header.count {
            return None;
        }
        Some((header, Bytes::copy_from_slice(&buf[FRAG_HEADER..])))
    }
}

/// Split `payload` into fragments of at most `mtu` bytes each (including
/// the shim). Panics if the split needs more than 255 fragments.
pub fn fragment(packet_id: u32, ethertype: u16, payload: &Bytes, mtu: usize) -> Vec<Bytes> {
    assert!(mtu > FRAG_HEADER, "MTU too small for fragment shim");
    let chunk = mtu - FRAG_HEADER;
    let count = payload.len().div_ceil(chunk).max(1);
    assert!(count <= 255, "packet needs {count} fragments (max 255)");
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let start = i * chunk;
        let end = (start + chunk).min(payload.len());
        let header = FragHeader {
            packet_id,
            index: i as u8,
            count: count as u8,
            ethertype,
        };
        let mut buf = BytesMut::with_capacity(FRAG_HEADER + end - start);
        buf.put_slice(&header.encode());
        buf.put_slice(&payload[start..end]);
        out.push(buf.freeze());
    }
    out
}

/// Receive-side reassembly state, keyed by `(source tag, packet id)` so
/// interleaved senders do not collide.
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: BTreeMap<(u64, u32), Vec<Option<Bytes>>>,
}

impl Reassembler {
    /// New empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer one fragment payload (shim included) from `source`. Returns the
    /// reassembled packet when this fragment completes it.
    pub fn offer(&mut self, source: u64, buf: &[u8]) -> Option<Bytes> {
        let (header, body) = FragHeader::decode(buf)?;
        let key = (source, header.packet_id);
        let slots = self
            .partial
            .entry(key)
            .or_insert_with(|| vec![None; header.count as usize]);
        if slots.len() != header.count as usize {
            // Inconsistent count for the same packet id: discard state.
            self.partial.remove(&key);
            return None;
        }
        slots[header.index as usize] = Some(body);
        if slots.iter().all(Option::is_some) {
            let slots = self.partial.remove(&key).unwrap();
            let total: usize = slots.iter().map(|s| s.as_ref().unwrap().len()).sum();
            let mut out = BytesMut::with_capacity(total);
            for s in slots {
                out.put_slice(&s.unwrap());
            }
            Some(out.freeze())
        } else {
            None
        }
    }

    /// Packets currently awaiting fragments.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn header_roundtrip() {
        let h = FragHeader {
            packet_id: 0xdeadbeef,
            index: 3,
            count: 7,
            ethertype: 0x88B5,
        };
        let mut buf = h.encode().to_vec();
        buf.extend_from_slice(b"body");
        let (parsed, body) = FragHeader::decode(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(&body[..], b"body");
    }

    #[test]
    fn decode_rejects_bad_shims() {
        assert!(FragHeader::decode(&[0; 4]).is_none()); // short
        let h = FragHeader {
            packet_id: 1,
            index: 5,
            count: 5,
            ethertype: 0,
        };
        assert!(FragHeader::decode(&h.encode()).is_none()); // index >= count
        let z = FragHeader {
            packet_id: 1,
            index: 0,
            count: 0,
            ethertype: 0,
        };
        assert!(FragHeader::decode(&z.encode()).is_none()); // zero count
    }

    #[test]
    fn fragment_sizes_respect_mtu() {
        let p = payload(10_000);
        let frags = fragment(1, 0x88B5, &p, 1500);
        assert_eq!(frags.len(), 10_000usize.div_ceil(1500 - FRAG_HEADER));
        for f in &frags {
            assert!(f.len() <= 1500);
        }
    }

    #[test]
    fn reassembly_in_order() {
        let p = payload(10_000);
        let frags = fragment(7, 0x88B5, &p, 1500);
        let mut r = Reassembler::new();
        let mut result = None;
        for f in &frags {
            result = r.offer(1, f);
        }
        assert_eq!(result.unwrap(), p);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembly_out_of_order() {
        let p = payload(5_000);
        let mut frags = fragment(9, 0x88B5, &p, 1000);
        frags.reverse();
        let mut r = Reassembler::new();
        let mut result = None;
        for f in &frags {
            result = r.offer(1, f);
        }
        assert_eq!(result.unwrap(), p);
    }

    #[test]
    fn interleaved_sources_do_not_collide() {
        let pa = payload(3000);
        let pb = Bytes::from(vec![0xffu8; 3000]);
        let fa = fragment(1, 0x88B5, &pa, 1000);
        let fb = fragment(1, 0x88B5, &pb, 1000); // same packet id, different source
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        for (a, b) in fa.iter().zip(fb.iter()) {
            if let Some(p) = r.offer(1, a) {
                out.push((1u64, p));
            }
            if let Some(p) = r.offer(2, b) {
                out.push((2u64, p));
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (1, pa));
        assert_eq!(out[1], (2, pb));
    }

    #[test]
    fn single_fragment_packet() {
        let p = payload(100);
        let frags = fragment(3, 0x88B5, &p, 1500);
        assert_eq!(frags.len(), 1);
        let mut r = Reassembler::new();
        assert_eq!(r.offer(1, &frags[0]).unwrap(), p);
    }

    #[test]
    fn empty_payload_still_one_fragment() {
        let p = Bytes::new();
        let frags = fragment(4, 0x88B5, &p, 1500);
        assert_eq!(frags.len(), 1);
        let mut r = Reassembler::new();
        assert_eq!(r.offer(1, &frags[0]).unwrap(), p);
    }

    #[test]
    #[should_panic(expected = "max 255")]
    fn oversize_packet_rejected() {
        let p = payload(300_000);
        fragment(1, 0x88B5, &p, 1000);
    }
}
