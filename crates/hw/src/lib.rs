//! # clic-hw — host hardware models
//!
//! The pieces of the communication path below the operating system:
//!
//! * [`pci`] — the 33 MHz / 32-bit PCI bus of the paper's testbed, a shared
//!   FIFO resource with per-transaction setup cost. The paper singles out
//!   PCI as the emerging bottleneck of gigabit-class communication.
//! * [`membus`] — the memory-copy cost model (CPU copies user↔kernel and
//!   kernel→NIC staging): a fixed per-copy overhead plus a per-byte term at
//!   the host's copy bandwidth.
//! * [`nic`] — the Gigabit Ethernet NIC: TX/RX descriptor rings, bus-master
//!   DMA over the PCI bus, MAC filtering, MTU enforcement (standard 1500 and
//!   jumbo 9000), **interrupt coalescing** (timer + frame-count thresholds,
//!   dynamically adjustable as the paper notes contemporary drivers allow),
//!   scatter-gather TX (what makes the 0-copy send path possible), and an
//!   optional **TX/RX fragmentation offload** (the Alteon-style feature the
//!   paper describes in §2 and defers to future work).
//! * [`frag`] — the on-wire shim header used by the fragmentation offload.
//! * [`coll`] — the NIC-resident collective engine (à la NIC-offloaded
//!   barrier/broadcast/reduction work on Myrinet/Quadrics): a k-ary
//!   combining tree run entirely in firmware, with the release phase a
//!   single Ethernet multicast riding the switch flood path.

#![allow(clippy::type_complexity)]
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coll;
pub mod frag;
pub mod membus;
pub mod nic;
pub mod pci;

pub use coll::{CollConfig, CollEngine, CollMsg};
pub use membus::CopyModel;
pub use nic::{Nic, NicConfig, RxPacket, TxDescriptor};
pub use pci::PciBus;
