//! The PCI bus.
//!
//! The paper's machines use 33 MHz / 32-bit PCI: 132 MB/s of raw burst
//! bandwidth, minus arbitration/address phases per transaction. All DMA on a
//! node (NIC TX reads, NIC RX writes, every bonded NIC) contends for the one
//! bus, which is exactly the "I/O buses have become the bottleneck" effect
//! the introduction describes.

use clic_sim::catalog::{counter_id, histogram_id};
use clic_sim::{MetricId, SerialResource, Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

/// Interned id of the per-transfer DMA size histogram.
const M_DMA_BYTES: MetricId = histogram_id("hw.pci.dma_bytes");
/// Interned id of the timeline byte-rate series (same name, counter kind).
const TL_DMA_BYTES: MetricId = counter_id("hw.pci.dma_bytes");

/// A shared PCI bus.
pub struct PciBus {
    bus: Rc<RefCell<SerialResource>>,
    bits_per_sec: u64,
    setup: SimDuration,
    max_burst: usize,
    bytes_moved: RefCell<u64>,
}

impl PciBus {
    /// A bus of raw bandwidth `bits_per_sec`, charging `setup` per burst and
    /// splitting transfers into bursts of at most `max_burst` bytes.
    pub fn new(bits_per_sec: u64, setup: SimDuration, max_burst: usize) -> Rc<PciBus> {
        assert!(bits_per_sec > 0 && max_burst > 0);
        Rc::new(PciBus {
            bus: SerialResource::new("pci"),
            bits_per_sec,
            setup,
            max_burst,
            bytes_moved: RefCell::new(0),
        })
    }

    /// The paper's testbed bus: 33 MHz × 32 bit = 1056 Mb/s raw. Real 33/32
    /// PCI targets disconnect bursts every few hundred bytes and pay
    /// arbitration + address phases each time; 512-byte bursts with ~0.9 µs
    /// of overhead apiece sustain ≈ 107 MB/s on long transfers, matching
    /// measured DMA throughput of the era.
    pub fn pci_33mhz_32bit() -> Rc<PciBus> {
        PciBus::new(1_056_000_000, SimDuration::from_ns(900), 512)
    }

    /// A 66 MHz / 64-bit PCI bus (4224 Mb/s raw, better burst behaviour) —
    /// the upgrade path §1 implies when it calls the I/O bus the
    /// bottleneck. Used by the bonding ablation.
    pub fn pci_66mhz_64bit() -> Rc<PciBus> {
        PciBus::new(4_224_000_000, SimDuration::from_ns(500), 2048)
    }

    /// Service time of a `bytes`-long DMA, ignoring queueing.
    pub fn service_time(&self, bytes: usize) -> SimDuration {
        let bursts = bytes.div_ceil(self.max_burst).max(1) as u64;
        self.setup * bursts + SimDuration::for_bytes(bytes as u64, self.bits_per_sec)
    }

    /// Perform a DMA of `bytes`; `done` runs when the transfer completes
    /// (after queueing behind other bus traffic).
    pub fn dma(
        self: &Rc<Self>,
        sim: &mut Sim,
        bytes: usize,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        *self.bytes_moved.borrow_mut() += bytes as u64;
        sim.metrics.observe_id(M_DMA_BYTES, bytes as u64);
        sim.timeline.counter(sim.now(), TL_DMA_BYTES, bytes as u64);
        let t = self.service_time(bytes);
        SerialResource::acquire(&self.bus, sim, t, done);
    }

    /// Total bytes DMA'd over this bus.
    pub fn bytes_moved(&self) -> u64 {
        *self.bytes_moved.borrow()
    }

    /// Cumulative bus-busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.bus.borrow().busy_time()
    }

    /// Completed transactions.
    pub fn transactions(&self) -> u64 {
        self.bus.borrow().items()
    }

    /// Effective sustained bandwidth for long transfers, in bytes/second —
    /// a derived sanity metric used by calibration tests.
    pub fn effective_bytes_per_sec(&self, transfer: usize) -> f64 {
        transfer as f64 / self.service_time(transfer).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clic_sim::SimTime;
    use std::cell::RefCell;

    #[test]
    fn service_time_includes_setup_per_burst() {
        let bus = PciBus::new(1_000_000_000, SimDuration::from_us(1), 1000);
        // 2500 bytes = 3 bursts of setup + 20 us of data time.
        assert_eq!(
            bus.service_time(2500),
            SimDuration::from_us(3) + SimDuration::from_us(20)
        );
    }

    #[test]
    fn zero_byte_dma_still_pays_setup() {
        let bus = PciBus::new(1_000_000_000, SimDuration::from_us(1), 1000);
        assert_eq!(bus.service_time(0), SimDuration::from_us(1));
    }

    #[test]
    fn transfers_serialize_on_the_bus() {
        let mut sim = Sim::new(0);
        let bus = PciBus::new(1_000_000_000, SimDuration::ZERO, 1 << 20);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2u32 {
            let log = log.clone();
            bus.dma(&mut sim, 1250, move |s| log.borrow_mut().push((i, s.now())));
        }
        sim.run();
        // 1250 B @ 1 Gb/s = 10 us each, serialized.
        assert_eq!(
            *log.borrow(),
            vec![(0, SimTime::from_us(10)), (1, SimTime::from_us(20))]
        );
        assert_eq!(bus.bytes_moved(), 2500);
        assert_eq!(bus.transactions(), 2);
    }

    #[test]
    fn testbed_bus_sustains_realistic_throughput() {
        let bus = PciBus::pci_33mhz_32bit();
        let eff = bus.effective_bytes_per_sec(1 << 20);
        // Long-transfer DMA on 33/32 PCI lands in the 95–120 MB/s window.
        assert!(
            (95.0e6..120.0e6).contains(&eff),
            "effective PCI bandwidth {:.1} MB/s",
            eff / 1e6
        );
    }

    #[test]
    fn short_transfers_dominated_by_setup() {
        let bus = PciBus::pci_33mhz_32bit();
        let short = bus.effective_bytes_per_sec(64);
        let long = bus.effective_bytes_per_sec(1 << 20);
        assert!(short < long / 2.0, "short={short} long={long}");
    }
}
