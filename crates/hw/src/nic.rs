//! The Gigabit Ethernet NIC.
//!
//! Models the SMC9462TX / 3C996-T class of bus-master NICs the paper used:
//!
//! * **TX**: the driver posts descriptors (possibly scatter-gather — that is
//!   what enables the 0-copy send path); the NIC DMAs the bytes over the
//!   shared PCI bus into its output FIFO and puts the frame on the wire.
//! * **RX**: arriving frames pass the MAC filter, land in the NIC's RX
//!   buffer ring and raise an interrupt, subject to **interrupt coalescing**
//!   (frame-count and timer thresholds, runtime-adjustable). Moving the data
//!   to system memory is the *driver's* job (`clic-os`): per §3.1 "the
//!   driver routine remains active until all the data stored in the NIC
//!   buffers have been moved to system memory" — that busy-wait is the
//!   dominant receive stage of Figure 7a.
//! * **MTU**: 1500 (standard) or 9000 (jumbo). A frame longer than the
//!   receiver's buffers is dropped — the jumbo interoperability caveat of
//!   §2 falls out of the model.
//! * **Fragmentation offload** (optional, §2 / future work): TX accepts
//!   packets larger than the MTU and splits them in "firmware"; RX
//!   reassembles before interrupting the host. Both sides must enable it.

use crate::coll::{CollAction, CollConfig, CollEngine, CollMsg, CollStimulus};
use crate::frag::{self, Reassembler, FRAG_HEADER};
use crate::pci::PciBus;
use bytes::Bytes;
use clic_ethernet::{EtherType, Frame, Link, LinkEnd, MacAddr, ETH_HEADER};
use clic_sim::catalog::counter_id;
use clic_sim::{Layer, MetricId, Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;

/// Interned metric ids — resolved against the catalog at compile time so
/// the RX hot path records without hashing names.
const M_RX_FCS_ERRORS: MetricId = counter_id("hw.nic.rx_fcs_errors");
const M_RX_NO_BUFFER: MetricId = counter_id("hw.nic.rx_no_buffer");
const TL_TX_BYTES: MetricId = counter_id("hw.nic.tx_bytes");
const M_COLL_RX: MetricId = counter_id("hw.nic.coll.msgs_rx");
const M_COLL_TX: MetricId = counter_id("hw.nic.coll.msgs_tx");
const M_COLL_DONE: MetricId = counter_id("hw.nic.coll.completions");

/// Static NIC configuration.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Maximum payload per wire frame (1500 standard, 9000 jumbo).
    pub mtu: usize,
    /// TX descriptor ring size.
    pub tx_ring: usize,
    /// RX descriptor ring size (pre-posted host buffers of MTU size).
    pub rx_ring: usize,
    /// Interrupt coalescing timer (0 disables the timer path).
    pub coalesce_usecs: u64,
    /// Interrupt after this many pending frames (<=1 interrupts per frame).
    pub coalesce_frames: u32,
    /// TX-side fragmentation offload (accept > MTU packets, split in NIC).
    pub tx_frag_offload: bool,
    /// RX-side reassembly of offload fragments.
    pub rx_frag_offload: bool,
    /// Deliver all frames regardless of destination MAC.
    pub promiscuous: bool,
    /// Modern receive model: the NIC bus-master-DMAs arriving frames into
    /// pre-posted host ring buffers *before* interrupting, so the driver
    /// never busy-waits the data move. This is what the Figure 8b
    /// improvement additionally assumes (and what required driver changes
    /// the portable CLIC avoided).
    pub host_rings: bool,
    /// Older NIC design (paths 2/4 of the paper's Figure 1): after the DMA
    /// into the NIC's output buffer, the NIC's own processor copies the
    /// frame to the network interface at this rate before transmission.
    /// `None` models a NIC that transmits straight from the DMA buffer.
    pub internal_copy_bytes_per_sec: Option<u64>,
}

impl NicConfig {
    /// Standard-MTU GbE NIC with coalescing set the way the paper's
    /// drivers were tuned (they "allow the dynamic adjustment of time
    /// intervals in coalesced interrupts", §2): a short 10 µs timer that
    /// batches back-to-back frames without stalling single packets.
    pub fn gigabit_standard() -> NicConfig {
        NicConfig {
            mtu: 1500,
            tx_ring: 256,
            rx_ring: 256,
            coalesce_usecs: 10,
            coalesce_frames: 8,
            tx_frag_offload: false,
            rx_frag_offload: false,
            promiscuous: false,
            host_rings: false,
            internal_copy_bytes_per_sec: None,
        }
    }

    /// Jumbo-frame variant (MTU 9000).
    pub fn gigabit_jumbo() -> NicConfig {
        NicConfig {
            mtu: 9000,
            ..Self::gigabit_standard()
        }
    }
}

/// A TX request from the driver. `payload` is the level-2 payload; the NIC
/// prepends nothing — the caller composed the Ethernet addressing here.
#[derive(Debug, Clone)]
pub struct TxDescriptor {
    /// Destination MAC.
    pub dst: MacAddr,
    /// EtherType of the payload.
    pub ethertype: EtherType,
    /// Packet payload. May exceed the MTU only with TX fragmentation
    /// offload enabled.
    pub payload: Bytes,
    /// Pipeline-trace id (0 = untraced).
    pub trace: u64,
}

/// A frame sitting in NIC memory, awaiting the driver's move to system
/// memory.
#[derive(Debug, Clone)]
pub struct RxPacket {
    /// The received frame (reassembled if RX offload applied).
    pub frame: Frame,
    /// When the frame finished arriving from the wire.
    pub arrived: SimTime,
}

/// NIC statistics counters.
#[derive(Debug, Default, Clone)]
pub struct NicStats {
    /// Frames put on the wire.
    pub tx_frames: u64,
    /// Payload bytes put on the wire.
    pub tx_bytes: u64,
    /// TX descriptors rejected because the ring was full.
    pub tx_ring_full: u64,
    /// Frames delivered to host memory.
    pub rx_frames: u64,
    /// Frames ignored by the MAC filter.
    pub rx_filtered: u64,
    /// Frames dropped for lack of an RX buffer.
    pub rx_no_buffer: u64,
    /// Frames discarded on FCS verification (injected corruption). The
    /// wire and serialization time were already paid.
    pub rx_fcs_errors: u64,
    /// Frames dropped because they exceed the RX buffer size (jumbo
    /// interoperability failures land here).
    pub rx_oversize: u64,
    /// Offload fragments dropped because RX offload is disabled.
    pub rx_frag_unsupported: u64,
    /// Interrupts raised.
    pub irqs: u64,
    /// Coalescing-timer arms.
    pub timer_arms: u64,
    /// Collective control frames consumed by the NIC engine (never
    /// surfaced to the host — compare with `irqs` to see the offload).
    pub coll_msgs_rx: u64,
    /// Collective control frames emitted by the NIC engine.
    pub coll_msgs_tx: u64,
    /// Collective operations completed on this NIC.
    pub coll_completions: u64,
}

/// The NIC.
pub struct Nic {
    mac: MacAddr,
    config: NicConfig,
    pci: Rc<PciBus>,
    link: Rc<RefCell<Link>>,
    link_end: LinkEnd,
    multicast: BTreeSet<MacAddr>,
    tx_in_flight: usize,
    tx_queue: VecDeque<(u64, VecDeque<Frame>)>,
    tx_active: bool,
    next_frag_id: u32,
    reasm: Reassembler,
    host_queue: VecDeque<RxPacket>,
    irq_asserted: bool,
    timer_generation: u64,
    timer_armed: bool,
    irq_handler: Option<Rc<dyn Fn(&mut Sim)>>,
    coll: Option<CollEngine>,
    stats: NicStats,
}

impl Nic {
    /// Create a NIC attached to `end` of `link`, DMA-ing over `pci`. The
    /// caller must also register the NIC as the link-end handler via
    /// [`Nic::attach_to_link`].
    pub fn new(
        mac: MacAddr,
        config: NicConfig,
        pci: Rc<PciBus>,
        link: Rc<RefCell<Link>>,
        link_end: LinkEnd,
    ) -> Rc<RefCell<Nic>> {
        assert!(config.tx_ring > 0 && config.rx_ring > 0 && config.mtu > FRAG_HEADER);
        Rc::new(RefCell::new(Nic {
            mac,
            config,
            pci,
            link,
            link_end,
            multicast: BTreeSet::new(),
            tx_in_flight: 0,
            tx_queue: VecDeque::new(),
            tx_active: false,
            next_frag_id: 1,
            reasm: Reassembler::new(),
            host_queue: VecDeque::new(),
            irq_asserted: false,
            timer_generation: 0,
            timer_armed: false,
            irq_handler: None,
            coll: None,
            stats: NicStats::default(),
        }))
    }

    /// Register this NIC as the receive handler of its link end. Call once
    /// during node wiring.
    pub fn attach_to_link(nic: &Rc<RefCell<Nic>>) {
        let (link, end) = {
            let n = nic.borrow();
            (n.link.clone(), n.link_end)
        };
        let nic2 = nic.clone();
        link.borrow_mut().attach(
            end,
            Rc::new(move |sim: &mut Sim, frame: Frame| {
                Nic::on_wire_frame(&nic2, sim, frame);
            }),
        );
    }

    /// This NIC's station address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Configured MTU.
    pub fn mtu(&self) -> usize {
        self.config.mtu
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NicStats {
        self.stats.clone()
    }

    /// Install the interrupt callback (the kernel's IRQ entry).
    pub fn set_irq_handler(&mut self, handler: Rc<dyn Fn(&mut Sim)>) {
        self.irq_handler = Some(handler);
    }

    /// Join an Ethernet multicast group.
    pub fn join_multicast(&mut self, group: MacAddr) {
        assert!(group.is_multicast());
        self.multicast.insert(group);
    }

    /// Adjust interrupt coalescing at runtime (the paper notes contemporary
    /// drivers expose this).
    pub fn set_coalescing(&mut self, usecs: u64, frames: u32) {
        self.config.coalesce_usecs = usecs;
        self.config.coalesce_frames = frames;
    }

    /// Free TX descriptors.
    pub fn tx_ring_free(&self) -> usize {
        self.config.tx_ring - self.tx_in_flight
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Post a TX descriptor. Returns `false` (and counts `tx_ring_full`)
    /// when the ring has no free slot — the driver/protocol handles staging,
    /// exactly the "if the data cannot be sent now" branch of §3.1.
    pub fn transmit(nic: &Rc<RefCell<Nic>>, sim: &mut Sim, desc: TxDescriptor) -> bool {
        let frames = {
            let mut n = nic.borrow_mut();
            if n.tx_in_flight >= n.config.tx_ring {
                n.stats.tx_ring_full += 1;
                return false;
            }
            let src = n.mac;
            let mut frames = Vec::new();
            if desc.payload.len() > n.config.mtu {
                assert!(
                    n.config.tx_frag_offload,
                    "payload {} exceeds MTU {} without TX fragmentation offload",
                    desc.payload.len(),
                    n.config.mtu
                );
                // Firmware-level fragmentation: one oversized descriptor
                // becomes several MTU-sized FRAG frames, DMA'd and put on
                // the wire piece by piece (the firmware pipelines; it does
                // not stage the whole super-packet first).
                let id = n.next_frag_id;
                n.next_frag_id += 1;
                for piece in frag::fragment(id, desc.ethertype.0, &desc.payload, n.config.mtu) {
                    frames.push(
                        Frame::new(desc.dst, src, EtherType::FRAG, piece).with_trace(desc.trace),
                    );
                }
            } else {
                frames.push(
                    Frame::new(desc.dst, src, desc.ethertype, desc.payload.clone())
                        .with_trace(desc.trace),
                );
            }
            n.tx_in_flight += 1;
            frames
        };
        if desc.trace != 0 {
            sim.trace
                .begin(sim.now(), Layer::Hw, "nic_tx_dma", desc.trace);
        }
        let start = {
            let mut n = nic.borrow_mut();
            n.tx_queue.push_back((desc.trace, frames.into()));
            if n.tx_active {
                false
            } else {
                n.tx_active = true;
                true
            }
        };
        if start {
            Nic::tx_pump(nic, sim);
        }
        true
    }

    /// Process TX descriptors strictly in ring order (as real NIC firmware
    /// does): DMA each frame of the head descriptor from host memory, put
    /// it on the wire, then move to the next descriptor. Fragments of one
    /// super-packet therefore leave contiguously.
    fn tx_pump(nic: &Rc<RefCell<Nic>>, sim: &mut Sim) {
        // Retire completed descriptors (freeing ring slots, closing trace
        // spans), then pick the next frame of the head descriptor.
        let (ended_traces, frame) = {
            let mut n = nic.borrow_mut();
            let mut ended = Vec::new();
            let frame = loop {
                let Some((_trace, frames)) = n.tx_queue.front_mut() else {
                    n.tx_active = false;
                    break None;
                };
                match frames.pop_front() {
                    Some(frame) => break Some(frame),
                    None => {
                        // lint:allow(panic-reach, reason="front_mut() returned Some on this same borrow, so the queue is provably nonempty")
                        let (trace, _) = n.tx_queue.pop_front().unwrap();
                        n.tx_in_flight -= 1;
                        if trace != 0 {
                            ended.push(trace);
                        }
                    }
                }
            };
            (ended, frame)
        };
        for trace in ended_traces {
            sim.trace.end(sim.now(), Layer::Hw, "nic_tx_dma", trace);
        }
        let Some(frame) = frame else {
            return;
        };
        let pci = nic.borrow().pci.clone();
        let dma_bytes = ETH_HEADER + frame.payload.len();
        let nic2 = nic.clone();
        pci.dma(sim, dma_bytes, move |sim| {
            sim.timeline
                .counter(sim.now(), TL_TX_BYTES, frame.payload.len() as u64);
            let (link, end, internal_copy) = {
                let mut n = nic2.borrow_mut();
                n.stats.tx_frames += 1;
                n.stats.tx_bytes += frame.payload.len() as u64;
                let copy = n
                    .config
                    .internal_copy_bytes_per_sec
                    .map(|bw| SimDuration::for_bytes(dma_bytes as u64, bw * 8));
                (n.link.clone(), n.link_end, copy)
            };
            match internal_copy {
                // Path 2/4 NICs: the on-board processor moves the frame
                // from the output buffer to the network interface first.
                Some(delay) => {
                    let nic3 = nic2.clone();
                    sim.schedule_in(delay, move |sim| {
                        Link::transmit(&link, sim, end, frame);
                        Nic::tx_pump(&nic3, sim);
                    });
                }
                None => {
                    Link::transmit(&link, sim, end, frame);
                    Nic::tx_pump(&nic2, sim);
                }
            }
        });
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    fn accepts(&self, dst: MacAddr) -> bool {
        self.config.promiscuous
            || dst == self.mac
            || dst.is_broadcast()
            || (dst.is_multicast() && self.multicast.contains(&dst))
    }

    fn on_wire_frame(nic: &Rc<RefCell<Nic>>, sim: &mut Sim, frame: Frame) {
        let to_engine = {
            let mut n = nic.borrow_mut();
            // FCS check comes first: the MAC verifies the CRC as the frame
            // arrives, before any filtering or buffering decision.
            if frame.fcs_corrupt {
                n.stats.rx_fcs_errors += 1;
                sim.metrics.counter_inc_id(M_RX_FCS_ERRORS);
                if frame.trace != 0 {
                    sim.trace
                        .instant(sim.now(), Layer::Hw, "drop.fcs", frame.trace);
                }
                return;
            }
            if !n.accepts(frame.dst) {
                n.stats.rx_filtered += 1;
                return;
            }
            frame.ethertype == EtherType::COLL && n.coll.is_some()
        };
        // Collective control frames terminate in NIC firmware: they never
        // touch the RX ring, never DMA to host memory, never raise an IRQ.
        if to_engine {
            Nic::coll_on_frame(nic, sim, frame);
            return;
        }
        {
            let mut n = nic.borrow_mut();
            // RX buffers are MTU-sized: longer frames cannot be stored.
            if frame.payload.len() > n.config.mtu {
                n.stats.rx_oversize += 1;
                return;
            }
            if n.host_queue.len() + n.reasm.pending() >= n.config.rx_ring {
                n.stats.rx_no_buffer += 1;
                sim.metrics.counter_inc_id(M_RX_NO_BUFFER);
                sim.trace
                    .instant(sim.now(), Layer::Hw, "drop.rx_no_buffer", frame.trace);
                return;
            }
        }
        if nic.borrow().config.host_rings {
            // Bus-master receive: move the frame to a host ring buffer
            // first, then raise the (coalesced) interrupt.
            let pci = nic.borrow().pci.clone();
            let bytes = ETH_HEADER + frame.payload.len();
            let nic2 = nic.clone();
            if frame.trace != 0 {
                sim.trace
                    .begin(sim.now(), Layer::Hw, "nic_rx_dma", frame.trace);
            }
            pci.dma(sim, bytes, move |sim| {
                if frame.trace != 0 {
                    sim.trace
                        .end(sim.now(), Layer::Hw, "nic_rx_dma", frame.trace);
                }
                Nic::rx_store(&nic2, sim, frame);
            });
        } else {
            Nic::rx_store(nic, sim, frame);
        }
    }

    // ------------------------------------------------------------------
    // NIC-offloaded collectives
    // ------------------------------------------------------------------

    /// Install the NIC-resident collective engine.
    ///
    /// Joins the group's multicast MAC (the down phase of every collective
    /// is a single Ethernet multicast) and arms the firmware state machine.
    /// After this call the host drives collectives through
    /// [`Nic::coll_barrier`], [`Nic::coll_allreduce`] and
    /// [`Nic::coll_bcast`]; all intermediate control frames are consumed
    /// and produced by the NIC without host interrupts.
    ///
    /// ```
    /// use clic_ethernet::{Link, LinkEnd, MacAddr, Switch};
    /// use clic_hw::coll::CollConfig;
    /// use clic_hw::nic::{Nic, NicConfig};
    /// use clic_hw::pci::PciBus;
    /// use clic_sim::Sim;
    /// use std::cell::RefCell;
    /// use std::rc::Rc;
    ///
    /// let mut sim = Sim::new(7);
    /// let sw = Switch::gigabit_default();
    /// let mut nics = Vec::new();
    /// for node in 0..2u32 {
    ///     let link = Link::gigabit();
    ///     Switch::attach_port(&sw, link.clone(), LinkEnd::A);
    ///     let nic = Nic::new(
    ///         MacAddr::for_node(node, 0),
    ///         NicConfig::gigabit_standard(),
    ///         PciBus::pci_33mhz_32bit(),
    ///         link,
    ///         LinkEnd::B,
    ///     );
    ///     Nic::attach_to_link(&nic);
    ///     nics.push(nic);
    /// }
    /// let members: Vec<_> = nics.iter().map(|n| n.borrow().mac()).collect();
    /// for (rank, nic) in nics.iter().enumerate() {
    ///     Nic::enable_collectives(nic, CollConfig::new(1, members.clone(), rank));
    /// }
    /// let done = Rc::new(RefCell::new(0u32));
    /// for nic in &nics {
    ///     let d = done.clone();
    ///     Nic::coll_barrier(nic, &mut sim, move |_sim| *d.borrow_mut() += 1);
    /// }
    /// sim.run();
    /// assert_eq!(*done.borrow(), 2); // every rank released
    /// assert_eq!(nics[0].borrow().stats().irqs, 0); // no host involvement
    /// ```
    pub fn enable_collectives(nic: &Rc<RefCell<Nic>>, config: CollConfig) {
        let group = config.group_mac();
        let mut n = nic.borrow_mut();
        assert_eq!(
            config.members[config.rank], n.mac,
            "collective rank/member mismatch for this NIC"
        );
        n.multicast.insert(group);
        n.coll = Some(CollEngine::new(config));
    }

    /// Whether the collective engine is armed.
    pub fn collectives_enabled(&self) -> bool {
        self.coll.is_some()
    }

    /// Enter the group barrier; `done` fires on this rank's release.
    pub fn coll_barrier(
        nic: &Rc<RefCell<Nic>>,
        sim: &mut Sim,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        Nic::coll_post(nic, sim, CollStimulus::Barrier(Box::new(done)));
    }

    /// Contribute `value` to a group-wide sum; `done` receives the total.
    pub fn coll_allreduce(
        nic: &Rc<RefCell<Nic>>,
        sim: &mut Sim,
        value: u64,
        done: impl FnOnce(&mut Sim, u64) + 'static,
    ) {
        Nic::coll_post(nic, sim, CollStimulus::Allreduce(value, Box::new(done)));
    }

    /// Broadcast from `root`: the root supplies `Some(data)`, every other
    /// rank passes `None`; `done` receives the payload on every rank.
    pub fn coll_bcast(
        nic: &Rc<RefCell<Nic>>,
        sim: &mut Sim,
        root: usize,
        data: Option<Bytes>,
        done: impl FnOnce(&mut Sim, Bytes) + 'static,
    ) {
        Nic::coll_post(
            nic,
            sim,
            CollStimulus::Bcast {
                root,
                data,
                done: Box::new(done),
            },
        );
    }

    /// Post a host stimulus to the engine after the firmware processing
    /// delay (the cost of writing the doorbell + firmware dispatch).
    fn coll_post(nic: &Rc<RefCell<Nic>>, sim: &mut Sim, stimulus: CollStimulus) {
        let delay = {
            let n = nic.borrow();
            n.coll
                .as_ref()
                .map(|e| e.config().proc_delay)
                .expect("collectives not enabled on this NIC")
        };
        let nic2 = nic.clone();
        sim.schedule_in(delay, move |sim| Nic::coll_step(&nic2, sim, stimulus));
    }

    /// A collective control frame arrived off the wire: decode, account,
    /// and feed the engine after the firmware processing delay.
    fn coll_on_frame(nic: &Rc<RefCell<Nic>>, sim: &mut Sim, frame: Frame) {
        let Some(msg) = CollMsg::decode(&frame.payload) else {
            return;
        };
        let (delay, trace) = {
            let mut n = nic.borrow_mut();
            let Some(e) = n.coll.as_ref() else { return };
            let d = e.config().proc_delay;
            let t = e.config().trace;
            n.stats.coll_msgs_rx += 1;
            (d, t)
        };
        sim.metrics.counter_inc_id(M_COLL_RX);
        let t = if frame.trace != 0 { frame.trace } else { trace };
        if t != 0 {
            if msg.is_up() {
                sim.trace.instant(sim.now(), Layer::Hw, "nic_coll_up", t);
            } else {
                sim.trace.instant(sim.now(), Layer::Hw, "nic_coll_down", t);
            }
        }
        let nic2 = nic.clone();
        sim.schedule_in(delay, move |sim| {
            Nic::coll_step(&nic2, sim, CollStimulus::Msg(msg));
        });
    }

    /// Run one engine step and execute the resulting actions.
    fn coll_step(nic: &Rc<RefCell<Nic>>, sim: &mut Sim, stimulus: CollStimulus) {
        let actions = {
            let mut n = nic.borrow_mut();
            let Some(engine) = n.coll.as_mut() else {
                return;
            };
            engine.step(stimulus)
        };
        for action in actions {
            match action {
                CollAction::Send { dst, msg } => {
                    let (link, end, src, trace) = {
                        let mut n = nic.borrow_mut();
                        n.stats.coll_msgs_tx += 1;
                        let t = n.coll.as_ref().map(|e| e.config().trace).unwrap_or(0);
                        (n.link.clone(), n.link_end, n.mac, t)
                    };
                    sim.metrics.counter_inc_id(M_COLL_TX);
                    if trace != 0 {
                        if msg.is_up() {
                            sim.trace
                                .instant(sim.now(), Layer::Hw, "nic_coll_up", trace);
                        } else {
                            sim.trace
                                .instant(sim.now(), Layer::Hw, "nic_coll_down", trace);
                        }
                    }
                    // Engine TX bypasses the TX ring and the PCI bus: the
                    // message originates in NIC firmware, not host memory.
                    let frame =
                        Frame::new(dst, src, EtherType::COLL, msg.encode()).with_trace(trace);
                    Link::transmit(&link, sim, end, frame);
                }
                CollAction::CompleteBarrier(done) => {
                    nic.borrow_mut().stats.coll_completions += 1;
                    sim.metrics.counter_inc_id(M_COLL_DONE);
                    done(sim);
                }
                CollAction::CompleteValue(done, value) => {
                    nic.borrow_mut().stats.coll_completions += 1;
                    sim.metrics.counter_inc_id(M_COLL_DONE);
                    done(sim, value);
                }
                CollAction::CompleteData(done, data) => {
                    nic.borrow_mut().stats.coll_completions += 1;
                    sim.metrics.counter_inc_id(M_COLL_DONE);
                    done(sim, data);
                }
            }
        }
    }

    fn rx_store(nic: &Rc<RefCell<Nic>>, sim: &mut Sim, frame: Frame) {
        let queued = {
            let mut n = nic.borrow_mut();
            if frame.ethertype == EtherType::FRAG {
                if !n.config.rx_frag_offload {
                    // The far side fragmented but we cannot reassemble:
                    // the offload must be enabled on both NICs.
                    n.stats.rx_frag_unsupported += 1;
                    return;
                }
                // Key reassembly by source station.
                let src_key = frame
                    .src
                    .0
                    .iter()
                    .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
                match (
                    frag::FragHeader::decode(&frame.payload),
                    n.reasm.offer(src_key, &frame.payload),
                ) {
                    (Some((h, _)), Some(packet)) => {
                        let whole =
                            Frame::new(frame.dst, frame.src, EtherType(h.ethertype), packet)
                                .with_trace(frame.trace);
                        n.host_queue.push_back(RxPacket {
                            frame: whole,
                            arrived: sim.now(),
                        });
                        n.stats.rx_frames += 1;
                        true
                    }
                    _ => false,
                }
            } else {
                n.host_queue.push_back(RxPacket {
                    frame,
                    arrived: sim.now(),
                });
                n.stats.rx_frames += 1;
                true
            }
        };
        if queued {
            Nic::evaluate_interrupt(nic, sim);
        }
    }

    /// Coalescing policy: assert immediately when coalescing is off or the
    /// frame threshold is met; otherwise (re)arm the timer.
    fn evaluate_interrupt(nic: &Rc<RefCell<Nic>>, sim: &mut Sim) {
        enum Decision {
            Nothing,
            Assert,
            Arm(SimDuration, u64),
        }
        let decision = {
            let mut n = nic.borrow_mut();
            let pending = n.host_queue.len();
            if n.irq_asserted || pending == 0 {
                Decision::Nothing
            } else if (n.config.coalesce_frames <= 1 && n.config.coalesce_usecs == 0)
                || (n.config.coalesce_frames >= 1 && pending >= n.config.coalesce_frames as usize)
            {
                Decision::Assert
            } else if n.config.coalesce_usecs > 0 && !n.timer_armed {
                n.timer_armed = true;
                n.timer_generation += 1;
                n.stats.timer_arms += 1;
                Decision::Arm(
                    SimDuration::from_us(n.config.coalesce_usecs),
                    n.timer_generation,
                )
            } else if n.config.coalesce_usecs == 0 {
                // Frame threshold configured but no timer: wait for frames.
                Decision::Nothing
            } else {
                Decision::Nothing
            }
        };
        match decision {
            Decision::Nothing => {}
            Decision::Assert => Nic::assert_irq(nic, sim),
            Decision::Arm(delay, generation) => {
                let nic2 = nic.clone();
                sim.schedule_in(delay, move |sim| {
                    let fire = {
                        let mut n = nic2.borrow_mut();
                        let valid = n.timer_armed && n.timer_generation == generation;
                        if valid {
                            n.timer_armed = false;
                        }
                        valid && !n.irq_asserted && !n.host_queue.is_empty()
                    };
                    if fire {
                        Nic::assert_irq(&nic2, sim);
                    }
                });
            }
        }
    }

    fn assert_irq(nic: &Rc<RefCell<Nic>>, sim: &mut Sim) {
        let handler = {
            let mut n = nic.borrow_mut();
            debug_assert!(!n.irq_asserted);
            n.irq_asserted = true;
            n.timer_armed = false;
            n.stats.irqs += 1;
            n.irq_handler.clone()
        };
        if let Some(h) = handler {
            h(sim);
        }
    }

    /// Driver entry: take all frames waiting in NIC memory, recycling their
    /// RX buffers. Unless [`NicConfig::host_rings`] is set, the driver is
    /// responsible for moving the bytes to system memory (and for charging
    /// the PCI/CPU time that takes).
    pub fn drain_rx(&mut self) -> Vec<RxPacket> {
        self.host_queue.drain(..).collect()
    }

    /// Like [`Nic::drain_rx`] but takes at most `limit` frames, leaving the
    /// rest queued (used by the driver's per-interrupt budget).
    pub fn drain_rx_up_to(&mut self, limit: usize) -> Vec<RxPacket> {
        let n = self.host_queue.len().min(limit);
        self.host_queue.drain(..n).collect()
    }

    /// Whether arriving frames are already in host memory at IRQ time.
    pub fn host_rings(&self) -> bool {
        self.config.host_rings
    }

    /// The PCI bus this NIC masters (the driver's RX moves ride it too).
    pub fn pci(&self) -> Rc<PciBus> {
        self.pci.clone()
    }

    /// Frames awaiting the driver.
    pub fn rx_pending(&self) -> usize {
        self.host_queue.len()
    }

    /// Driver acknowledges the interrupt. If frames queued while the driver
    /// ran, the coalescing policy is re-evaluated: with a coalescing timer
    /// configured the re-assertion is deferred by it (interrupt
    /// mitigation), giving deferred work a window to run; otherwise it may
    /// re-assert at once.
    pub fn ack_irq(nic: &Rc<RefCell<Nic>>, sim: &mut Sim) {
        let arm = {
            let mut n = nic.borrow_mut();
            n.irq_asserted = false;
            if n.host_queue.is_empty() {
                None
            } else if n.config.coalesce_usecs > 0 {
                if n.timer_armed {
                    Some(None) // timer already pending
                } else {
                    n.timer_armed = true;
                    n.timer_generation += 1;
                    n.stats.timer_arms += 1;
                    Some(Some((
                        SimDuration::from_us(n.config.coalesce_usecs),
                        n.timer_generation,
                    )))
                }
            } else {
                None // fall through to the normal policy below
            }
        };
        match arm {
            Some(Some((delay, generation))) => {
                let nic2 = nic.clone();
                sim.schedule_in(delay, move |sim| {
                    let fire = {
                        let mut n = nic2.borrow_mut();
                        let valid = n.timer_armed && n.timer_generation == generation;
                        if valid {
                            n.timer_armed = false;
                        }
                        valid && !n.irq_asserted && !n.host_queue.is_empty()
                    };
                    if fire {
                        Nic::assert_irq(&nic2, sim);
                    }
                });
            }
            Some(None) => {}
            None => Nic::evaluate_interrupt(nic, sim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two NICs wired back-to-back on a gigabit link, each with its own
    /// PCI bus (two hosts).
    struct Pair {
        a: Rc<RefCell<Nic>>,
        b: Rc<RefCell<Nic>>,
        irqs_b: Rc<RefCell<u32>>,
    }

    fn mk_pair(cfg_a: NicConfig, cfg_b: NicConfig) -> Pair {
        let link = Link::new(1_000_000_000, SimDuration::from_ns(500));
        let a = Nic::new(
            MacAddr::for_node(1, 0),
            cfg_a,
            PciBus::pci_33mhz_32bit(),
            link.clone(),
            LinkEnd::A,
        );
        let b = Nic::new(
            MacAddr::for_node(2, 0),
            cfg_b,
            PciBus::pci_33mhz_32bit(),
            link.clone(),
            LinkEnd::B,
        );
        Nic::attach_to_link(&a);
        Nic::attach_to_link(&b);
        let irqs_b = Rc::new(RefCell::new(0u32));
        let c = irqs_b.clone();
        b.borrow_mut()
            .set_irq_handler(Rc::new(move |_sim| *c.borrow_mut() += 1));
        Pair { a, b, irqs_b }
    }

    fn no_coalesce(mut cfg: NicConfig) -> NicConfig {
        cfg.coalesce_usecs = 0;
        cfg.coalesce_frames = 1;
        cfg
    }

    fn tx(pair: &Pair, sim: &mut Sim, payload_len: usize) -> bool {
        let dst = pair.b.borrow().mac();
        Nic::transmit(
            &pair.a,
            sim,
            TxDescriptor {
                dst,
                ethertype: EtherType::CLIC,
                payload: Bytes::from(vec![0x5au8; payload_len]),
                trace: 0,
            },
        )
    }

    #[test]
    fn frame_reaches_peer_host_memory() {
        let mut sim = Sim::new(0);
        let pair = mk_pair(
            no_coalesce(NicConfig::gigabit_standard()),
            no_coalesce(NicConfig::gigabit_standard()),
        );
        assert!(tx(&pair, &mut sim, 1400));
        sim.run();
        assert_eq!(*pair.irqs_b.borrow(), 1);
        let pkts = pair.b.borrow_mut().drain_rx();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].frame.payload.len(), 1400);
        assert!(pkts[0].frame.payload.iter().all(|&b| b == 0x5a));
        assert_eq!(pair.a.borrow().stats().tx_frames, 1);
        assert_eq!(pair.b.borrow().stats().rx_frames, 1);
    }

    #[test]
    fn mac_filter_rejects_other_stations() {
        let mut sim = Sim::new(0);
        let pair = mk_pair(
            no_coalesce(NicConfig::gigabit_standard()),
            no_coalesce(NicConfig::gigabit_standard()),
        );
        Nic::transmit(
            &pair.a,
            &mut sim,
            TxDescriptor {
                dst: MacAddr::for_node(99, 0),
                ethertype: EtherType::CLIC,
                payload: Bytes::from(vec![1u8; 64]),
                trace: 0,
            },
        );
        sim.run();
        assert_eq!(*pair.irqs_b.borrow(), 0);
        assert_eq!(pair.b.borrow().stats().rx_filtered, 1);
    }

    #[test]
    fn broadcast_and_joined_multicast_accepted() {
        let mut sim = Sim::new(0);
        let pair = mk_pair(
            no_coalesce(NicConfig::gigabit_standard()),
            no_coalesce(NicConfig::gigabit_standard()),
        );
        let group = MacAddr::multicast_group(4);
        pair.b.borrow_mut().join_multicast(group);
        for dst in [MacAddr::BROADCAST, group, MacAddr::multicast_group(5)] {
            Nic::transmit(
                &pair.a,
                &mut sim,
                TxDescriptor {
                    dst,
                    ethertype: EtherType::CLIC,
                    payload: Bytes::from(vec![1u8; 64]),
                    trace: 0,
                },
            );
        }
        sim.run();
        // Broadcast + joined group delivered; unjoined group filtered.
        assert_eq!(pair.b.borrow().stats().rx_frames, 2);
        assert_eq!(pair.b.borrow().stats().rx_filtered, 1);
    }

    #[test]
    fn jumbo_into_standard_receiver_dropped_oversize() {
        let mut sim = Sim::new(0);
        let pair = mk_pair(
            no_coalesce(NicConfig::gigabit_jumbo()),
            no_coalesce(NicConfig::gigabit_standard()),
        );
        assert!(tx(&pair, &mut sim, 9000));
        sim.run();
        assert_eq!(pair.b.borrow().stats().rx_oversize, 1);
        assert_eq!(pair.b.borrow().stats().rx_frames, 0);
    }

    #[test]
    fn jumbo_to_jumbo_delivered() {
        let mut sim = Sim::new(0);
        let pair = mk_pair(
            no_coalesce(NicConfig::gigabit_jumbo()),
            no_coalesce(NicConfig::gigabit_jumbo()),
        );
        assert!(tx(&pair, &mut sim, 9000));
        sim.run();
        assert_eq!(pair.b.borrow().stats().rx_frames, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversize_tx_without_offload_panics() {
        let mut sim = Sim::new(0);
        let pair = mk_pair(
            no_coalesce(NicConfig::gigabit_standard()),
            no_coalesce(NicConfig::gigabit_standard()),
        );
        tx(&pair, &mut sim, 4000);
        sim.run();
    }

    #[test]
    fn tx_ring_backpressure() {
        let mut sim = Sim::new(0);
        let mut cfg = no_coalesce(NicConfig::gigabit_standard());
        cfg.tx_ring = 2;
        let pair = mk_pair(cfg, no_coalesce(NicConfig::gigabit_standard()));
        assert!(tx(&pair, &mut sim, 1000));
        assert!(tx(&pair, &mut sim, 1000));
        assert!(!tx(&pair, &mut sim, 1000), "third post must be refused");
        assert_eq!(pair.a.borrow().stats().tx_ring_full, 1);
        sim.run();
        // After the DMAs drain, the ring frees up again.
        assert!(tx(&pair, &mut sim, 1000));
        sim.run();
        assert_eq!(pair.b.borrow().stats().rx_frames, 3);
    }

    #[test]
    fn rx_ring_overflow_drops() {
        let mut sim = Sim::new(0);
        let mut cfg_b = NicConfig::gigabit_standard();
        cfg_b.rx_ring = 4;
        // Coalescing keeps the driver away so the host queue fills.
        cfg_b.coalesce_usecs = 10_000;
        cfg_b.coalesce_frames = 1_000;
        let pair = mk_pair(no_coalesce(NicConfig::gigabit_standard()), cfg_b);
        for _ in 0..10 {
            assert!(tx(&pair, &mut sim, 1000));
        }
        sim.run_until(SimTime::from_us(500));
        let stats = pair.b.borrow().stats();
        assert_eq!(stats.rx_frames, 4);
        assert_eq!(stats.rx_no_buffer, 6);
    }

    #[test]
    fn coalescing_by_frame_count() {
        let mut sim = Sim::new(0);
        let mut cfg_b = NicConfig::gigabit_standard();
        cfg_b.coalesce_usecs = 0;
        cfg_b.coalesce_frames = 4;
        let pair = mk_pair(no_coalesce(NicConfig::gigabit_standard()), cfg_b);
        for _ in 0..8 {
            assert!(tx(&pair, &mut sim, 1000));
        }
        sim.run();
        // 8 frames, threshold 4, driver never drains: a single IRQ is
        // asserted at 4 pending and stays asserted.
        assert_eq!(*pair.irqs_b.borrow(), 1);
        assert_eq!(pair.b.borrow().rx_pending(), 8);
        // Drain + ack: queue empty, no further IRQ.
        let pkts = pair.b.borrow_mut().drain_rx();
        assert_eq!(pkts.len(), 8);
        Nic::ack_irq(&pair.b, &mut sim);
        sim.run();
        assert_eq!(*pair.irqs_b.borrow(), 1);
    }

    #[test]
    fn coalescing_timer_fires_for_stragglers() {
        let mut sim = Sim::new(0);
        let mut cfg_b = NicConfig::gigabit_standard();
        cfg_b.coalesce_usecs = 30;
        cfg_b.coalesce_frames = 8;
        let pair = mk_pair(no_coalesce(NicConfig::gigabit_standard()), cfg_b);
        assert!(tx(&pair, &mut sim, 500));
        sim.run();
        // One frame < threshold: IRQ comes from the 30 us timer.
        assert_eq!(*pair.irqs_b.borrow(), 1);
        assert_eq!(pair.b.borrow().stats().timer_arms, 1);
        // The delay should be at least the coalescing interval.
        assert!(sim.now() >= SimTime::from_us(30));
    }

    #[test]
    fn ack_with_pending_frames_reasserts() {
        let mut sim = Sim::new(0);
        let mut cfg_b = NicConfig::gigabit_standard();
        cfg_b.coalesce_usecs = 0;
        cfg_b.coalesce_frames = 1;
        let pair = mk_pair(no_coalesce(NicConfig::gigabit_standard()), cfg_b);
        for _ in 0..3 {
            assert!(tx(&pair, &mut sim, 800));
        }
        sim.run();
        // First IRQ asserted on first arrival; later arrivals coalesce into
        // the asserted state.
        assert_eq!(*pair.irqs_b.borrow(), 1);
        // Driver acks *without* draining: must re-assert for pending work.
        Nic::ack_irq(&pair.b, &mut sim);
        sim.run();
        assert_eq!(*pair.irqs_b.borrow(), 2);
        assert_eq!(pair.b.borrow().rx_pending(), 3);
    }

    #[test]
    fn frag_offload_end_to_end() {
        let mut sim = Sim::new(0);
        let mut cfg = no_coalesce(NicConfig::gigabit_standard());
        cfg.tx_frag_offload = true;
        cfg.rx_frag_offload = true;
        let pair = mk_pair(cfg.clone(), cfg);
        let payload: Vec<u8> = (0..20_000).map(|i| (i % 253) as u8).collect();
        let dst = pair.b.borrow().mac();
        Nic::transmit(
            &pair.a,
            &mut sim,
            TxDescriptor {
                dst,
                ethertype: EtherType::CLIC,
                payload: Bytes::from(payload.clone()),
                trace: 0,
            },
        );
        sim.run();
        // Many wire frames, one host packet, one interrupt.
        assert!(pair.a.borrow().stats().tx_frames > 10);
        assert_eq!(pair.b.borrow().stats().rx_frames, 1);
        assert_eq!(*pair.irqs_b.borrow(), 1);
        let pkts = pair.b.borrow_mut().drain_rx();
        assert_eq!(pkts[0].frame.payload, Bytes::from(payload));
        assert_eq!(pkts[0].frame.ethertype, EtherType::CLIC);
    }

    #[test]
    fn frag_into_non_offload_receiver_dropped() {
        let mut sim = Sim::new(0);
        let mut cfg_a = no_coalesce(NicConfig::gigabit_standard());
        cfg_a.tx_frag_offload = true;
        let pair = mk_pair(cfg_a, no_coalesce(NicConfig::gigabit_standard()));
        assert!(tx(&pair, &mut sim, 5000));
        sim.run();
        let stats = pair.b.borrow().stats();
        assert_eq!(stats.rx_frames, 0);
        assert!(stats.rx_frag_unsupported > 0);
    }

    #[test]
    fn corrupt_frame_discarded_on_fcs() {
        use clic_ethernet::FaultPlan;
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        link.borrow_mut().set_faults(
            LinkEnd::A,
            FaultPlan {
                corrupt: 1.0,
                ..FaultPlan::default()
            },
        );
        let cfg = no_coalesce(NicConfig::gigabit_standard());
        let a = Nic::new(
            MacAddr::for_node(1, 0),
            cfg.clone(),
            PciBus::pci_33mhz_32bit(),
            link.clone(),
            LinkEnd::A,
        );
        let b = Nic::new(
            MacAddr::for_node(2, 0),
            cfg,
            PciBus::pci_33mhz_32bit(),
            link.clone(),
            LinkEnd::B,
        );
        Nic::attach_to_link(&a);
        Nic::attach_to_link(&b);
        let irqs = Rc::new(RefCell::new(0u32));
        let c = irqs.clone();
        b.borrow_mut()
            .set_irq_handler(Rc::new(move |_sim| *c.borrow_mut() += 1));
        Nic::transmit(
            &a,
            &mut sim,
            TxDescriptor {
                dst: MacAddr::for_node(2, 0),
                ethertype: EtherType::CLIC,
                payload: Bytes::from(vec![9u8; 700]),
                trace: 0,
            },
        );
        sim.run();
        // The link delivered the frame (wire time was paid), the MAC
        // threw it away on the bad FCS, and the host never heard of it.
        assert_eq!(link.borrow().delivered(LinkEnd::A), 1);
        let stats = b.borrow().stats();
        assert_eq!(stats.rx_fcs_errors, 1);
        assert_eq!(stats.rx_frames, 0);
        assert_eq!(*irqs.borrow(), 0);
    }

    #[test]
    fn runtime_coalescing_adjustment() {
        let mut sim = Sim::new(0);
        let mut cfg_b = NicConfig::gigabit_standard();
        cfg_b.coalesce_usecs = 1_000;
        cfg_b.coalesce_frames = 1_000;
        let pair = mk_pair(no_coalesce(NicConfig::gigabit_standard()), cfg_b);
        // Tighten coalescing to per-frame before traffic arrives.
        pair.b.borrow_mut().set_coalescing(0, 1);
        assert!(tx(&pair, &mut sim, 400));
        sim.run();
        assert_eq!(*pair.irqs_b.borrow(), 1);
        assert!(sim.now() < SimTime::from_us(100), "no timer wait expected");
    }
}

#[cfg(test)]
mod internal_copy_tests {
    use super::*;

    #[test]
    fn internal_copy_delays_wire_entry() {
        // Identical frames through a path-2 NIC and a path-4 NIC: the
        // internal copy must add exactly bytes/rate to the trip.
        fn delivery_time(internal: Option<u64>) -> SimTime {
            let mut sim = Sim::new(0);
            let link = Link::new(1_000_000_000, SimDuration::ZERO);
            let mut cfg = NicConfig::gigabit_standard();
            cfg.coalesce_usecs = 0;
            cfg.coalesce_frames = 1;
            cfg.internal_copy_bytes_per_sec = internal;
            let a = Nic::new(
                MacAddr::for_node(1, 0),
                cfg.clone(),
                PciBus::pci_33mhz_32bit(),
                link.clone(),
                LinkEnd::A,
            );
            cfg.internal_copy_bytes_per_sec = None;
            let b = Nic::new(
                MacAddr::for_node(2, 0),
                cfg,
                PciBus::pci_33mhz_32bit(),
                link,
                LinkEnd::B,
            );
            Nic::attach_to_link(&a);
            Nic::attach_to_link(&b);
            let arrived = Rc::new(RefCell::new(SimTime::ZERO));
            let ar = arrived.clone();
            b.borrow_mut().set_irq_handler(Rc::new(move |sim| {
                *ar.borrow_mut() = sim.now();
            }));
            Nic::transmit(
                &a,
                &mut sim,
                TxDescriptor {
                    dst: MacAddr::for_node(2, 0),
                    ethertype: EtherType::CLIC,
                    payload: Bytes::from(vec![1u8; 986]), // 1000 B with header
                    trace: 0,
                },
            );
            sim.run();
            let t = *arrived.borrow();
            t
        }
        let plain = delivery_time(None);
        let copied = delivery_time(Some(100_000_000)); // 1000 B at 100 MB/s = 10 us
        assert_eq!(copied - plain, SimDuration::from_us(10));
    }

    #[test]
    fn drain_rx_up_to_respects_limit() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        let mut cfg = NicConfig::gigabit_standard();
        cfg.coalesce_usecs = 1_000;
        cfg.coalesce_frames = 1_000; // keep the IRQ away
        let a = Nic::new(
            MacAddr::for_node(1, 0),
            cfg.clone(),
            PciBus::pci_33mhz_32bit(),
            link.clone(),
            LinkEnd::A,
        );
        let b = Nic::new(
            MacAddr::for_node(2, 0),
            cfg,
            PciBus::pci_33mhz_32bit(),
            link,
            LinkEnd::B,
        );
        Nic::attach_to_link(&a);
        Nic::attach_to_link(&b);
        for _ in 0..5 {
            Nic::transmit(
                &a,
                &mut sim,
                TxDescriptor {
                    dst: MacAddr::for_node(2, 0),
                    ethertype: EtherType::CLIC,
                    payload: Bytes::from(vec![2u8; 100]),
                    trace: 0,
                },
            );
        }
        sim.run();
        assert_eq!(b.borrow().rx_pending(), 5);
        let first = b.borrow_mut().drain_rx_up_to(2);
        assert_eq!(first.len(), 2);
        assert_eq!(b.borrow().rx_pending(), 3);
        let rest = b.borrow_mut().drain_rx_up_to(10);
        assert_eq!(rest.len(), 3);
        assert_eq!(b.borrow().rx_pending(), 0);
    }

    // ------------------------------------------------------------------
    // NIC-offloaded collectives
    // ------------------------------------------------------------------

    /// `n` NICs on one switch, all with the collective engine armed for
    /// group 9.
    fn mk_group(sim: &mut Sim, n: usize) -> Vec<Rc<RefCell<Nic>>> {
        use crate::coll::CollConfig;
        use clic_ethernet::Switch;
        let sw = Switch::gigabit_default();
        let mut nics = Vec::new();
        let mut cfg = NicConfig::gigabit_standard();
        cfg.coalesce_usecs = 0;
        cfg.coalesce_frames = 1;
        for node in 0..n {
            let link = Link::gigabit();
            Switch::attach_port(&sw, link.clone(), LinkEnd::A);
            let nic = Nic::new(
                MacAddr::for_node(node as u32, 0),
                cfg.clone(),
                PciBus::pci_33mhz_32bit(),
                link,
                LinkEnd::B,
            );
            Nic::attach_to_link(&nic);
            let c = Rc::new(RefCell::new(0u32));
            let c2 = c.clone();
            nic.borrow_mut()
                .set_irq_handler(Rc::new(move |_sim| *c2.borrow_mut() += 1));
            nics.push(nic);
        }
        let members: Vec<_> = nics.iter().map(|n| n.borrow().mac()).collect();
        for (rank, nic) in nics.iter().enumerate() {
            Nic::enable_collectives(nic, CollConfig::new(9, members.clone(), rank));
        }
        let _ = sim;
        nics
    }

    #[test]
    fn coll_barrier_releases_every_rank_without_host_irqs() {
        let mut sim = Sim::new(11);
        let nics = mk_group(&mut sim, 8);
        let done = Rc::new(RefCell::new(0u32));
        for nic in &nics {
            let d = done.clone();
            Nic::coll_barrier(nic, &mut sim, move |_sim| *d.borrow_mut() += 1);
        }
        sim.run();
        assert_eq!(*done.borrow(), 8);
        for nic in &nics {
            let st = nic.borrow().stats();
            assert_eq!(st.irqs, 0, "collective frames must not reach the host");
            assert_eq!(st.coll_completions, 1);
            assert_eq!(nic.borrow().rx_pending(), 0);
        }
        // Up phase: 7 unicast arrivals; down phase: one multicast flooded
        // to the 7 non-root members.
        let rx: u64 = nics.iter().map(|n| n.borrow().stats().coll_msgs_rx).sum();
        assert_eq!(rx, 14);
    }

    #[test]
    fn coll_allreduce_sums_on_every_rank() {
        let mut sim = Sim::new(12);
        let nics = mk_group(&mut sim, 5);
        let results = Rc::new(RefCell::new(Vec::new()));
        for (rank, nic) in nics.iter().enumerate() {
            let r = results.clone();
            Nic::coll_allreduce(nic, &mut sim, (rank as u64 + 1) * 10, move |_sim, total| {
                r.borrow_mut().push(total);
            });
        }
        sim.run();
        assert_eq!(*results.borrow(), vec![150u64; 5]);
    }

    #[test]
    fn coll_bcast_delivers_root_payload_everywhere() {
        let mut sim = Sim::new(13);
        let nics = mk_group(&mut sim, 6);
        let payload = Bytes::from_static(b"fabric-wide state");
        let got = Rc::new(RefCell::new(0u32));
        for (rank, nic) in nics.iter().enumerate() {
            let data = (rank == 2).then(|| payload.clone());
            let want = payload.clone();
            let g = got.clone();
            Nic::coll_bcast(nic, &mut sim, 2, data, move |_sim, d| {
                assert_eq!(d, want);
                *g.borrow_mut() += 1;
            });
        }
        sim.run();
        assert_eq!(*got.borrow(), 6);
    }

    #[test]
    fn coll_back_to_back_barriers_use_fresh_sequence_numbers() {
        let mut sim = Sim::new(14);
        let nics = mk_group(&mut sim, 4);
        let done = Rc::new(RefCell::new(0u32));
        for nic in &nics {
            let d = done.clone();
            let nic2 = nic.clone();
            Nic::coll_barrier(nic, &mut sim, move |sim| {
                *d.borrow_mut() += 1;
                let d2 = d.clone();
                Nic::coll_barrier(&nic2, sim, move |_sim| *d2.borrow_mut() += 1);
            });
        }
        sim.run();
        assert_eq!(*done.borrow(), 8);
        for nic in &nics {
            assert_eq!(nic.borrow().stats().coll_completions, 2);
        }
    }
}
