//! Memory-copy cost model.
//!
//! Every CPU copy (user→kernel on TCP send, kernel→user on receive, the
//! CLIC staging copy when the NIC ring is full) charges the processor a
//! fixed overhead (cache/function-call effects) plus a per-byte term at the
//! host's sustained copy bandwidth. The paper stresses that although copies
//! look cheap next to memory-bus bandwidth, they burn CPU, memory and PCI
//! resources that applications need — so the cost lands on the CPU resource
//! and shows up in utilisation figures.

use clic_sim::catalog::histogram_id;
use clic_sim::{MetricId, Sim, SimDuration};

/// Interned id of the per-copy size histogram.
const M_COPY_BYTES: MetricId = histogram_id("hw.mem.copy_bytes");

/// Cost model for CPU memory copies.
#[derive(Debug, Clone, Copy)]
pub struct CopyModel {
    /// Fixed per-copy overhead.
    pub per_copy: SimDuration,
    /// Sustained copy bandwidth, bytes per second.
    pub bytes_per_sec: u64,
}

impl CopyModel {
    /// A ~1.5 GHz PC of the paper's era: ~0.3 µs fixed cost, ~400 MB/s
    /// sustained memcpy through the memory hierarchy.
    pub fn era_2002() -> CopyModel {
        CopyModel {
            per_copy: SimDuration::from_ns(300),
            bytes_per_sec: 400_000_000,
        }
    }

    /// CPU time to copy `bytes`.
    pub fn cost(&self, bytes: usize) -> SimDuration {
        self.per_copy + SimDuration::for_bytes(bytes as u64, self.bytes_per_sec * 8)
    }

    /// Like [`CopyModel::cost`], but also records the copy size in the
    /// run's `hw.mem.copy_bytes` histogram so copy traffic shows up in the
    /// metrics dump.
    pub fn cost_observed(&self, sim: &mut Sim, bytes: usize) -> SimDuration {
        sim.metrics.observe_id(M_COPY_BYTES, bytes as u64);
        self.cost(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_affine_in_bytes() {
        let m = CopyModel {
            per_copy: SimDuration::from_ns(100),
            bytes_per_sec: 1_000_000_000,
        };
        assert_eq!(m.cost(0), SimDuration::from_ns(100));
        assert_eq!(
            m.cost(1000),
            SimDuration::from_ns(100) + SimDuration::from_ns(1000)
        );
        // Twice the bytes, twice the variable part.
        let c1 = m.cost(5000) - m.per_copy;
        let c2 = m.cost(10000) - m.per_copy;
        assert_eq!(c2, c1 * 2);
    }

    #[test]
    fn era_model_in_plausible_range() {
        let m = CopyModel::era_2002();
        // Copying a 1500 B frame: a handful of microseconds.
        let c = m.cost(1500);
        assert!(
            (SimDuration::from_us(2)..SimDuration::from_us(8)).contains(&c),
            "cost={c}"
        );
        // Copying 1 MB: ~2.5 ms at 400 MB/s.
        let c = m.cost(1 << 20);
        assert!(
            (SimDuration::from_ms(2)..SimDuration::from_ms(3)).contains(&c),
            "cost={c}"
        );
    }
}
