//! Property-based tests for the fragmentation shim and PCI cost model.

use bytes::Bytes;
use clic_hw::frag::{fragment, FragHeader, Reassembler, FRAG_HEADER};
use clic_hw::PciBus;
use proptest::prelude::*;

proptest! {
    /// Fragment + reassemble is the identity for any payload, MTU and
    /// arrival order.
    #[test]
    fn frag_roundtrip_any_order(
        len in 0usize..40_000,
        mtu in (FRAG_HEADER + 1)..9_000,
        seed in any::<u64>(),
    ) {
        // The shim's u8 fragment index caps a packet at 255 fragments.
        prop_assume!(len <= (mtu - FRAG_HEADER) * 255);
        let payload = Bytes::from((0..len).map(|i| (i as u64 ^ seed) as u8).collect::<Vec<_>>());
        let mut frags = fragment(7, 0x88B5, &payload, mtu);
        // Deterministic pseudo-shuffle from the seed.
        let n = frags.len();
        for i in 0..n {
            let j = ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) as usize) % n;
            frags.swap(i, j);
        }
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frags {
            if let Some(p) = r.offer(1, f) {
                prop_assert!(out.is_none(), "reassembled twice");
                out = Some(p);
            }
        }
        prop_assert_eq!(out.unwrap(), payload);
        prop_assert_eq!(r.pending(), 0);
    }

    /// Duplicated fragments never corrupt the reassembled payload.
    #[test]
    fn frag_duplicates_harmless(len in 1usize..10_000, dup in 0usize..5) {
        let payload = Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<_>>());
        let frags = fragment(3, 0x800, &payload, 1500);
        let mut r = Reassembler::new();
        let mut out = None;
        let dup_idx = dup % frags.len();
        for (i, f) in frags.iter().enumerate() {
            // Offer the duplicate first; either copy may complete the
            // packet (if the duplicate is the last missing piece, the
            // second copy starts a new partial — that is the NIC's actual
            // behaviour and is harmless).
            if i == dup_idx {
                if let Some(p) = r.offer(9, f) {
                    out = Some(p);
                }
            }
            if let Some(p) = r.offer(9, f) {
                out = Some(p);
            }
        }
        prop_assert_eq!(out.unwrap(), payload);
    }

    /// Every fragment respects the MTU and carries a decodable shim with
    /// consistent metadata.
    #[test]
    fn fragments_well_formed(len in 0usize..30_000, mtu in 64usize..9_000) {
        prop_assume!(len <= (mtu - FRAG_HEADER) * 255);
        let payload = Bytes::from(vec![0xabu8; len]);
        let frags = fragment(11, 0x88B5, &payload, mtu);
        let count = frags.len();
        prop_assert!(count >= 1);
        for (i, f) in frags.iter().enumerate() {
            prop_assert!(f.len() <= mtu);
            let (h, _) = FragHeader::decode(f).unwrap();
            prop_assert_eq!(h.packet_id, 11);
            prop_assert_eq!(h.index as usize, i);
            prop_assert_eq!(h.count as usize, count);
            prop_assert_eq!(h.ethertype, 0x88B5);
        }
    }

    /// PCI service time is monotone in transfer size and superadditive-ish:
    /// splitting a transfer never makes it cheaper.
    #[test]
    fn pci_service_monotone(a in 0usize..100_000, b in 0usize..100_000) {
        let bus = PciBus::pci_33mhz_32bit();
        let ta = bus.service_time(a);
        let tb = bus.service_time(b);
        if a <= b {
            prop_assert!(ta <= tb);
        }
        let tab = bus.service_time(a + b);
        prop_assert!(tab <= ta + tb, "one burst beats two");
    }
}
