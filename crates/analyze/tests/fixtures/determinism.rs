//! Fixture: every determinism rule should fire on this file.
use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub fn bad_clock() -> u64 {
    let start = Instant::now();
    let _ = SystemTime::now();
    start.elapsed().as_nanos() as u64
}

pub fn bad_rng() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen::<u32>() ^ rand::random::<u32>()
}

pub fn bad_maps() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    m.len() + s.len()
}
