//! Fixture: one registered and one unregistered name per family.
pub fn record(metrics: &mut Metrics, trace: &mut Trace, now: SimTime) {
    metrics.counter_inc("clic.msgs_sent"); // registered: no finding
    metrics.counter_inc("not.registered"); // metric-name finding
    metrics.observe("also.not.registered", 3); // metric-name finding
    trace.begin(now, Layer::Clic, "driver_tx", 7); // registered: no finding
    trace.instant(now, Layer::Clic, "bogus_stage", 7); // stage-name finding
}

/// Compile-time interning resolvers count as recordings too.
const GOOD_ID: MetricId = catalog::counter_id("clic.msgs_sent"); // registered
const BAD_ID: MetricId = counter_id("interned.not.registered"); // metric-name finding
const BAD_STAGE: StageId = stage_id("interned_bogus_stage"); // stage-name finding
