//! Fixture: one registered and one unregistered name per family.
pub fn record(metrics: &mut Metrics, trace: &mut Trace, now: SimTime) {
    metrics.counter_inc("clic.msgs_sent"); // registered: no finding
    metrics.counter_inc("not.registered"); // metric-name finding
    metrics.observe("also.not.registered", 3); // metric-name finding
    trace.begin(now, Layer::Clic, "driver_tx", 7); // registered: no finding
    trace.instant(now, Layer::Clic, "bogus_stage", 7); // stage-name finding
}
