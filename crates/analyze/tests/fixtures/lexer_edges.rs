//! Lexer edge cases that must produce zero diagnostics: raw identifiers,
//! `>>` closing nested generics, and float exponent literals.

pub fn r#loop(r#type: u64) -> u64 {
    r#type
}

pub fn nested(v: Vec<Vec<u64>>) -> usize {
    v.len()
}

pub fn exponents() -> f64 {
    let adj_ns = 1e-9;
    let big = 2.5E3;
    big.max(adj_ns)
}
