//! Fixture: annotation handling — one audited suppression, one stale
//! annotation, one malformed annotation.
use std::collections::HashMap; // lint:allow(unordered-collection, reason="keyed lookups only, never iterated")

// lint:allow(wall-clock, reason="stale: nothing below uses the clock")
pub fn nothing() {}

// lint:allow(no-unwrap)
pub fn broken_annotation() {}

// lint:allow(unordered-collection, reason="keyed lookups only, never iterated")
pub fn lookups(m: &HashMap<u32, u32>) -> Option<u32> {
    m.get(&1).copied()
}
