//! Graph fixture: panicking helper plus an orphaned metric recorder.

pub fn slot_lookup(tbl: &Table) -> u32 {
    tbl.slot().unwrap()
}

fn orphan_probe(m: &Metrics) {
    m.counter("clic.msgs_sent", 1);
}
