//! Graph fixture: the only job entry point. It reaches none of the
//! recorders, so catalog liveness must flag the orphaned name.

pub fn run_all() -> u32 {
    0
}
