//! Graph fixture: host-time helper outside the simulation perimeter.

pub fn host_stamp() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
