//! Graph fixture: public simulation APIs whose helpers cross into
//! non-simulation crates (see the graph tests in lints.rs).

pub fn drive_tick(sim: &mut Sim) {
    host_stamp();
}

pub fn kick_tx(tbl: &Table) -> u32 {
    slot_lookup(tbl)
}

pub fn bump_deadline(now_ns: u64, delta_ns: u64) -> u64 {
    now_ns + delta_ns
}
