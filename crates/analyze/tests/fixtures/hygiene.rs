//! Fixture: unwrap family in library code fires; test code is exempt.
pub fn bad(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("boom");
    if a + b == 0 {
        panic!("zero");
    }
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
