//! Fixture: a crate root missing both required headers.
#![warn(missing_docs)]

pub fn noop() {}
