//! Fixture-driven rule tests plus the workspace self-check.
//!
//! Each fixture under `tests/fixtures/` is fed through
//! [`clic_analyze::rules::check_file`] with a synthetic in-scope path, and
//! the test asserts exactly which rules fire. The final test runs the full
//! analyzer over this workspace and requires it to be clean, so `cargo
//! test -q` fails the moment a violation lands on the main branch.

use clic_analyze::catalog::{parse as parse_catalog, Catalog};
use clic_analyze::diag::render_json_diag;
use clic_analyze::rules::{analyze, analyze_workspace, check_file, check_manifest, RULES};
use clic_analyze::workspace::{find_root, Manifest, SourceFile, Workspace};
use std::collections::BTreeSet;
use std::path::Path;
use std::path::PathBuf;

/// A miniature catalog: one registered counter, one registered stage.
const CATALOG_SRC: &str = r#"
pub const METRICS: &[MetricDef] = &[
    MetricDef { name: "clic.msgs_sent", kind: C, help: "sent" },
];
pub const STAGES: &[StageDef] = &[
    StageDef { name: "driver_tx", layers: &[Layer::Clic], help: "tx" },
];
"#;

fn catalog() -> Catalog {
    parse_catalog(CATALOG_SRC).expect("fixture catalog parses")
}

/// Run `check_file` on a fixture as if it lived inside the `sim` crate.
fn run(rel_name: &str, text: &str, is_lib_root: bool) -> Vec<clic_analyze::Diag> {
    let f = SourceFile {
        rel: format!("crates/sim/src/{rel_name}"),
        crate_name: "sim".to_string(),
        is_lib_root,
        is_test_source: false,
        text: text.to_string(),
    };
    let mut usage = clic_analyze::rules::Usage::default();
    check_file(&f, &catalog(), &mut usage)
}

fn rules_fired(diags: &[clic_analyze::Diag]) -> BTreeSet<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn determinism_fixture_fires_all_three_rules() {
    let diags = run(
        "determinism.rs",
        include_str!("fixtures/determinism.rs"),
        false,
    );
    let fired = rules_fired(&diags);
    assert!(fired.contains("wall-clock"), "{diags:?}");
    assert!(fired.contains("ad-hoc-rng"), "{diags:?}");
    assert!(fired.contains("unordered-collection"), "{diags:?}");
    // Both clock types, both RNG forms, both collections.
    assert!(diags.iter().filter(|d| d.rule == "wall-clock").count() >= 2);
    assert!(diags.iter().filter(|d| d.rule == "ad-hoc-rng").count() >= 2);
    assert!(
        diags
            .iter()
            .filter(|d| d.rule == "unordered-collection")
            .count()
            >= 2
    );
}

#[test]
fn name_fixture_flags_only_unregistered_names() {
    let diags = run("names.rs", include_str!("fixtures/names.rs"), false);
    let metric: Vec<_> = diags.iter().filter(|d| d.rule == "metric-name").collect();
    let stage: Vec<_> = diags.iter().filter(|d| d.rule == "stage-name").collect();
    assert_eq!(metric.len(), 3, "{diags:?}");
    assert!(metric.iter().any(|d| d.message.contains("not.registered")));
    assert!(metric
        .iter()
        .any(|d| d.message.contains("interned.not.registered")));
    assert_eq!(stage.len(), 2, "{diags:?}");
    assert!(stage.iter().any(|d| d.message.contains("bogus_stage")));
    assert!(stage
        .iter()
        .any(|d| d.message.contains("interned_bogus_stage")));
    // Registered names pass (string and interned-resolver shapes).
    assert!(!diags.iter().any(|d| d.message.contains("clic.msgs_sent")));
    assert!(!diags.iter().any(|d| d.message.contains("driver_tx")));
}

#[test]
fn hygiene_fixture_flags_library_code_not_tests() {
    let diags = run("hygiene.rs", include_str!("fixtures/hygiene.rs"), false);
    let unwraps: Vec<_> = diags.iter().filter(|d| d.rule == "no-unwrap").collect();
    // unwrap + expect + panic! in `bad`; the unwrap inside #[cfg(test)]
    // is exempt.
    assert_eq!(unwraps.len(), 3, "{diags:?}");
    assert!(unwraps.iter().all(|d| d.line < 11), "{unwraps:?}");
}

#[test]
fn allow_fixture_suppresses_audits_and_flags_stale_ones() {
    let diags = run("allows.rs", include_str!("fixtures/allows.rs"), false);
    let fired = rules_fired(&diags);
    // Both HashMap sites carry audited annotations.
    assert!(!fired.contains("unordered-collection"), "{diags:?}");
    // The wall-clock annotation suppresses nothing.
    assert!(fired.contains("unused-allow"), "{diags:?}");
    // The reason-less annotation is malformed.
    assert!(fired.contains("malformed-allow"), "{diags:?}");
}

#[test]
fn missing_headers_fire_on_lib_roots_only() {
    let text = include_str!("fixtures/bad_lib.rs");
    let as_root = run("lib.rs", text, true);
    assert_eq!(
        as_root.iter().filter(|d| d.rule == "crate-header").count(),
        2,
        "{as_root:?}"
    );
    let as_module = run("bad_lib.rs", text, false);
    assert!(!rules_fired(&as_module).contains("crate-header"));
}

#[test]
fn registry_dependencies_are_rejected() {
    let m = Manifest {
        rel: "crates/x/Cargo.toml".to_string(),
        text: "[package]\nname = \"x\"\n\n[dependencies]\n\
               good = { path = \"../good\" }\n\
               ws.workspace = true\n\
               bad = \"1.0\"\n\
               also-bad = { version = \"0.3\", features = [\"std\"] }\n\n\
               [dependencies.sub]\nversion = \"2\"\n"
            .to_string(),
    };
    let diags = check_manifest(&m);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "paths-only-deps"));
    assert!(diags.iter().any(|d| d.message.contains("`bad`")));
    assert!(diags.iter().any(|d| d.message.contains("`also-bad`")));
    assert!(diags.iter().any(|d| d.message.contains("`sub`")));
}

#[test]
fn fixture_suite_exercises_at_least_six_rules() {
    let mut fired: BTreeSet<&'static str> = BTreeSet::new();
    for (name, text) in [
        ("determinism.rs", include_str!("fixtures/determinism.rs")),
        ("names.rs", include_str!("fixtures/names.rs")),
        ("hygiene.rs", include_str!("fixtures/hygiene.rs")),
        ("allows.rs", include_str!("fixtures/allows.rs")),
    ] {
        fired.extend(rules_fired(&run(name, text, false)));
    }
    fired.extend(rules_fired(&run(
        "lib.rs",
        include_str!("fixtures/bad_lib.rs"),
        true,
    )));
    let m = Manifest {
        rel: "crates/x/Cargo.toml".to_string(),
        text: "[dependencies]\nbad = \"1.0\"\n".to_string(),
    };
    fired.extend(check_manifest(&m).iter().map(|d| d.rule));
    assert!(
        fired.len() >= 6,
        "expected >= 6 distinct rules across fixtures, got {fired:?}"
    );
    for rule in &fired {
        assert!(
            RULES.iter().any(|(r, _)| r == rule),
            "fixture fired unknown rule {rule}"
        );
    }
}

/// A synthetic workspace wiring the graph fixtures into a miniature CLIC:
/// `sim` public APIs call into a wall-clock shim and a panicking `hw`
/// helper, `hw` also holds an orphaned metric recorder, and `bench` is the
/// only job entry point. Every call-graph rule family must fire on it.
fn graph_workspace() -> Workspace {
    let files = [
        ("crates/sim/src/catalog.rs", "sim", CATALOG_SRC),
        (
            "crates/sim/src/api_fix.rs",
            "sim",
            include_str!("fixtures/graph/sim_api.rs"),
        ),
        (
            "crates/shim-clock/src/lib.rs",
            "shim-clock",
            include_str!("fixtures/graph/shim_clock.rs"),
        ),
        (
            "crates/hw/src/sink_fix.rs",
            "hw",
            include_str!("fixtures/graph/hw_sink.rs"),
        ),
        (
            "crates/bench/src/entry_fix.rs",
            "bench",
            include_str!("fixtures/graph/bench_entry.rs"),
        ),
    ];
    Workspace {
        root: PathBuf::new(),
        files: files
            .into_iter()
            .map(|(rel, krate, text)| SourceFile {
                rel: rel.to_string(),
                crate_name: krate.to_string(),
                is_lib_root: false,
                is_test_source: false,
                text: text.to_string(),
            })
            .collect(),
        manifests: vec![Manifest {
            rel: "Cargo.toml".to_string(),
            text: "[workspace.dependencies]\n".to_string(),
        }],
    }
}

fn graph_diag(rule: &str) -> clic_analyze::Diag {
    let report = analyze_workspace(&graph_workspace());
    report
        .diags
        .iter()
        .find(|d| d.rule == rule)
        .unwrap_or_else(|| panic!("no {rule} diagnostic in {:?}", report.diags))
        .clone()
}

#[test]
fn taint_fixture_fails_the_analyzer_with_a_cross_crate_path() {
    let d = graph_diag("determinism-taint");
    assert_eq!(d.file, "crates/shim-clock/src/lib.rs");
    assert_eq!(d.line, 4);
    assert_eq!(d.path, vec!["sim::drive_tick", "shim-clock::host_stamp"]);
    assert!(d.message.contains("`Instant`"), "{d:?}");
}

#[test]
fn overflow_fixture_fails_the_analyzer() {
    let d = graph_diag("time-overflow");
    assert_eq!(d.file, "crates/sim/src/api_fix.rs");
    assert_eq!(d.line, 13);
    assert!(d.message.contains("unchecked `+`"), "{d:?}");
}

#[test]
fn panic_reach_fixture_fails_the_analyzer_with_the_chain() {
    let d = graph_diag("panic-reach");
    assert_eq!(d.file, "crates/hw/src/sink_fix.rs");
    assert_eq!(d.line, 4);
    assert_eq!(d.path, vec!["sim::kick_tx", "hw::slot_lookup"]);
    assert!(d.message.contains("`.unwrap()`"), "{d:?}");
}

#[test]
fn liveness_fixture_fails_the_analyzer_at_the_catalog_entry() {
    let d = graph_diag("unreachable-name");
    assert_eq!(d.file, "crates/sim/src/catalog.rs");
    assert_eq!(d.line, 3);
    assert_eq!(d.path, vec!["hw::orphan_probe"]);
    assert!(d.message.contains("clic.msgs_sent"), "{d:?}");
}

/// Golden JSON for one diagnostic per call-graph family: the schema
/// (`rule`, `file`, `line`, `message`, `path`, `suggestion`) must stay
/// identical across families, with `path` populated root-first.
#[test]
fn json_schema_is_identical_across_rule_families() {
    let report = analyze_workspace(&graph_workspace());
    let families = [
        "determinism-taint",
        "time-overflow",
        "panic-reach",
        "unreachable-name",
    ];
    for rule in families {
        let d = report
            .diags
            .iter()
            .find(|d| d.rule == rule)
            .unwrap_or_else(|| panic!("no {rule} diagnostic"));
        let json = render_json_diag(d);
        for key in [
            "\"rule\": ",
            "\"file\": ",
            "\"line\": ",
            "\"message\": ",
            "\"path\": [",
            "\"suggestion\": ",
        ] {
            assert!(json.contains(key), "{rule} JSON missing {key}: {json}");
        }
    }
    let taint = render_json_diag(
        report
            .diags
            .iter()
            .find(|d| d.rule == "determinism-taint")
            .unwrap(),
    );
    assert_eq!(
        taint,
        "{\"rule\": \"determinism-taint\", \"file\": \"crates/shim-clock/src/lib.rs\", \
         \"line\": 4, \"message\": \"`Instant` (wall-clock time) is reachable from \
         simulation API `sim::drive_tick`\", \
         \"path\": [\"sim::drive_tick\", \"shim-clock::host_stamp\"], \
         \"suggestion\": \"break the call path or inject the value through Sim/config; \
         audited escape: lint:allow(determinism-taint, reason=\\\"...\\\")\"}"
    );
}

#[test]
fn lexer_edge_cases_produce_no_diagnostics() {
    // Raw identifiers, `>>` closing nested generics, float exponents —
    // any lexing regression shows up as a spurious diagnostic (a split
    // `1e-9` puts a binary `-` next to `adj_ns`, which would fire
    // time-overflow).
    let diags = run(
        "lexer_edges.rs",
        include_str!("fixtures/lexer_edges.rs"),
        false,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn workspace_is_lint_clean() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root not found");
    let report = analyze(&root).expect("analysis runs");
    assert!(
        report.diags.is_empty(),
        "workspace has lint violations:\n{}",
        clic_analyze::diag::render_human(&report.diags, report.files_scanned)
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
