//! Fixture-driven rule tests plus the workspace self-check.
//!
//! Each fixture under `tests/fixtures/` is fed through
//! [`clic_analyze::rules::check_file`] with a synthetic in-scope path, and
//! the test asserts exactly which rules fire. The final test runs the full
//! analyzer over this workspace and requires it to be clean, so `cargo
//! test -q` fails the moment a violation lands on the main branch.

use clic_analyze::catalog::{parse as parse_catalog, Catalog};
use clic_analyze::rules::{analyze, check_file, check_manifest, RULES};
use clic_analyze::workspace::{find_root, Manifest, SourceFile};
use std::collections::BTreeSet;
use std::path::Path;

/// A miniature catalog: one registered counter, one registered stage.
const CATALOG_SRC: &str = r#"
pub const METRICS: &[MetricDef] = &[
    MetricDef { name: "clic.msgs_sent", kind: C, help: "sent" },
];
pub const STAGES: &[StageDef] = &[
    StageDef { name: "driver_tx", layers: &[Layer::Clic], help: "tx" },
];
"#;

fn catalog() -> Catalog {
    parse_catalog(CATALOG_SRC).expect("fixture catalog parses")
}

/// Run `check_file` on a fixture as if it lived inside the `sim` crate.
fn run(rel_name: &str, text: &str, is_lib_root: bool) -> Vec<clic_analyze::Diag> {
    let f = SourceFile {
        rel: format!("crates/sim/src/{rel_name}"),
        crate_name: "sim".to_string(),
        is_lib_root,
        text: text.to_string(),
    };
    let mut usage = clic_analyze::rules::Usage::default();
    check_file(&f, &catalog(), &mut usage)
}

fn rules_fired(diags: &[clic_analyze::Diag]) -> BTreeSet<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn determinism_fixture_fires_all_three_rules() {
    let diags = run(
        "determinism.rs",
        include_str!("fixtures/determinism.rs"),
        false,
    );
    let fired = rules_fired(&diags);
    assert!(fired.contains("wall-clock"), "{diags:?}");
    assert!(fired.contains("ad-hoc-rng"), "{diags:?}");
    assert!(fired.contains("unordered-collection"), "{diags:?}");
    // Both clock types, both RNG forms, both collections.
    assert!(diags.iter().filter(|d| d.rule == "wall-clock").count() >= 2);
    assert!(diags.iter().filter(|d| d.rule == "ad-hoc-rng").count() >= 2);
    assert!(
        diags
            .iter()
            .filter(|d| d.rule == "unordered-collection")
            .count()
            >= 2
    );
}

#[test]
fn name_fixture_flags_only_unregistered_names() {
    let diags = run("names.rs", include_str!("fixtures/names.rs"), false);
    let metric: Vec<_> = diags.iter().filter(|d| d.rule == "metric-name").collect();
    let stage: Vec<_> = diags.iter().filter(|d| d.rule == "stage-name").collect();
    assert_eq!(metric.len(), 3, "{diags:?}");
    assert!(metric.iter().any(|d| d.message.contains("not.registered")));
    assert!(metric
        .iter()
        .any(|d| d.message.contains("interned.not.registered")));
    assert_eq!(stage.len(), 2, "{diags:?}");
    assert!(stage.iter().any(|d| d.message.contains("bogus_stage")));
    assert!(stage
        .iter()
        .any(|d| d.message.contains("interned_bogus_stage")));
    // Registered names pass (string and interned-resolver shapes).
    assert!(!diags.iter().any(|d| d.message.contains("clic.msgs_sent")));
    assert!(!diags.iter().any(|d| d.message.contains("driver_tx")));
}

#[test]
fn hygiene_fixture_flags_library_code_not_tests() {
    let diags = run("hygiene.rs", include_str!("fixtures/hygiene.rs"), false);
    let unwraps: Vec<_> = diags.iter().filter(|d| d.rule == "no-unwrap").collect();
    // unwrap + expect + panic! in `bad`; the unwrap inside #[cfg(test)]
    // is exempt.
    assert_eq!(unwraps.len(), 3, "{diags:?}");
    assert!(unwraps.iter().all(|d| d.line < 11), "{unwraps:?}");
}

#[test]
fn allow_fixture_suppresses_audits_and_flags_stale_ones() {
    let diags = run("allows.rs", include_str!("fixtures/allows.rs"), false);
    let fired = rules_fired(&diags);
    // Both HashMap sites carry audited annotations.
    assert!(!fired.contains("unordered-collection"), "{diags:?}");
    // The wall-clock annotation suppresses nothing.
    assert!(fired.contains("unused-allow"), "{diags:?}");
    // The reason-less annotation is malformed.
    assert!(fired.contains("malformed-allow"), "{diags:?}");
}

#[test]
fn missing_headers_fire_on_lib_roots_only() {
    let text = include_str!("fixtures/bad_lib.rs");
    let as_root = run("lib.rs", text, true);
    assert_eq!(
        as_root.iter().filter(|d| d.rule == "crate-header").count(),
        2,
        "{as_root:?}"
    );
    let as_module = run("bad_lib.rs", text, false);
    assert!(!rules_fired(&as_module).contains("crate-header"));
}

#[test]
fn registry_dependencies_are_rejected() {
    let m = Manifest {
        rel: "crates/x/Cargo.toml".to_string(),
        text: "[package]\nname = \"x\"\n\n[dependencies]\n\
               good = { path = \"../good\" }\n\
               ws.workspace = true\n\
               bad = \"1.0\"\n\
               also-bad = { version = \"0.3\", features = [\"std\"] }\n\n\
               [dependencies.sub]\nversion = \"2\"\n"
            .to_string(),
    };
    let diags = check_manifest(&m);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "paths-only-deps"));
    assert!(diags.iter().any(|d| d.message.contains("`bad`")));
    assert!(diags.iter().any(|d| d.message.contains("`also-bad`")));
    assert!(diags.iter().any(|d| d.message.contains("`sub`")));
}

#[test]
fn fixture_suite_exercises_at_least_six_rules() {
    let mut fired: BTreeSet<&'static str> = BTreeSet::new();
    for (name, text) in [
        ("determinism.rs", include_str!("fixtures/determinism.rs")),
        ("names.rs", include_str!("fixtures/names.rs")),
        ("hygiene.rs", include_str!("fixtures/hygiene.rs")),
        ("allows.rs", include_str!("fixtures/allows.rs")),
    ] {
        fired.extend(rules_fired(&run(name, text, false)));
    }
    fired.extend(rules_fired(&run(
        "lib.rs",
        include_str!("fixtures/bad_lib.rs"),
        true,
    )));
    let m = Manifest {
        rel: "crates/x/Cargo.toml".to_string(),
        text: "[dependencies]\nbad = \"1.0\"\n".to_string(),
    };
    fired.extend(check_manifest(&m).iter().map(|d| d.rule));
    assert!(
        fired.len() >= 6,
        "expected >= 6 distinct rules across fixtures, got {fired:?}"
    );
    for rule in &fired {
        assert!(
            RULES.iter().any(|(r, _)| r == rule),
            "fixture fired unknown rule {rule}"
        );
    }
}

#[test]
fn workspace_is_lint_clean() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root not found");
    let report = analyze(&root).expect("analysis runs");
    assert!(
        report.diags.is_empty(),
        "workspace has lint violations:\n{}",
        clic_analyze::diag::render_human(&report.diags, report.files_scanned)
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
