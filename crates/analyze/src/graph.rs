//! The workspace call graph: conservative name+arity call resolution over
//! the items from [`crate::items`], filtered by the real crate-dependency
//! DAG, with BFS reachability (and paths) plus a DOT export layered by
//! crate.
//!
//! ## Resolution conservatism
//!
//! Without type information, a call site `x.ack(seq)` could target any
//! workspace method named `ack`; the resolver therefore adds an edge to
//! *every* candidate that matches by name — narrowed by arity when at
//! least one candidate's arity matches, by the `Type::` qualifier when one
//! is written, and always by the crate-dependency DAG (an item in
//! `clic-sim` cannot call into `clic-cluster`, because Cargo would not
//! link it). Over-approximation is the safe direction for every rule
//! built on this graph: reachability can only be reported too large,
//! never too small, so a "no path" verdict is trustworthy and a "path
//! exists" verdict names real code to audit.

use crate::items::{parse_items, Item};
use crate::lexer::lex;
use crate::rules;
use crate::workspace::{Manifest, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every function item, in deterministic (file, line) order.
    pub items: Vec<Item>,
    /// Adjacency: `edges[i]` lists the item ids `i` may call.
    pub edges: Vec<Vec<usize>>,
    /// Transitive crate-dependency closure: crate dir → crate dirs it may
    /// link against (itself excluded).
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
}

/// Build the call graph for a discovered workspace.
///
/// Lexes every library source, parses items, resolves calls. `test_map`
/// supplies the per-file `#[cfg(test)]` line ranges (keyed by
/// workspace-relative path) so test items are flagged.
pub fn build(ws: &Workspace) -> Graph {
    let mut items: Vec<Item> = Vec::new();
    for f in &ws.files {
        let lexed = lex(&f.text);
        let tests = rules::test_regions(&lexed);
        items.extend(parse_items(&f.rel, &f.crate_name, &lexed, &tests));
    }
    let crate_deps = dependency_closure(&ws.manifests);
    let edges = resolve(&items, &crate_deps);
    Graph {
        items,
        edges,
        crate_deps,
    }
}

/// Whether an item in `from` may call an item in `to`: same crate, or
/// `to` in `from`'s transitive dependency closure. Crates absent from the
/// manifest set (synthetic test workspaces) may call anything —
/// over-approximation stays the safe direction.
fn crates_linked(deps: &BTreeMap<String, BTreeSet<String>>, from: &str, to: &str) -> bool {
    if from == to {
        return true;
    }
    match deps.get(from) {
        Some(d) => d.contains(to),
        None => true,
    }
}

/// Resolve every call/ref site to candidate items.
fn resolve(items: &[Item], deps: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<usize>> {
    // name → item ids.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, it) in items.iter().enumerate() {
        by_name.entry(&it.name).or_default().push(id);
    }

    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(items.len());
    for it in items {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for c in &it.calls {
            let Some(cands) = by_name.get(c.name.as_str()) else {
                continue;
            };
            // Qualifier / receiver narrowing.
            let shape: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| {
                    let t = &items[id];
                    let forward = crates_linked(deps, &it.crate_name, &t.crate_name);
                    if c.method {
                        // Trait-impl methods are dynamic-dispatch targets:
                        // `os` invokes a `PacketHandler` that `core`
                        // registered, so for them the DAG check also
                        // accepts the reverse direction (callee's crate
                        // depends on the caller's).
                        let reverse =
                            t.trait_method && crates_linked(deps, &t.crate_name, &it.crate_name);
                        return t.has_self && (forward || reverse);
                    }
                    if !forward {
                        return false;
                    }
                    if let Some(q) = &c.qualifier {
                        // `Type::assoc(...)`: restrict to that owner when
                        // the owner is known at all; `module::free(...)`
                        // qualifiers fall through to free functions.
                        match &t.owner {
                            Some(o) => o == q,
                            None => !items.iter().any(|x| x.owner.as_deref() == Some(q)),
                        }
                    } else {
                        !t.has_self && t.owner.is_none()
                    }
                })
                .collect();
            // Arity narrowing: only when at least one candidate agrees —
            // a mismatch may be our own miscount (closure commas), so it
            // widens rather than drops.
            let args = c.arity;
            let arity_matched: Vec<usize> = shape
                .iter()
                .copied()
                .filter(|&id| {
                    let t = &items[id];
                    // UFCS `Type::method(recv, ..)` counts the receiver.
                    let expected = t.arity + usize::from(t.has_self && !c.method);
                    expected == args
                })
                .collect();
            out.extend(if arity_matched.is_empty() {
                shape
            } else {
                arity_matched
            });
        }
        // Bare fn-pointer references: name match over free functions and
        // associated fns only (methods need a receiver to be called).
        for r in &it.refs {
            if let Some(cands) = by_name.get(r.name.as_str()) {
                out.extend(cands.iter().copied().filter(|&id| {
                    let t = &items[id];
                    !t.has_self && crates_linked(deps, &it.crate_name, &t.crate_name)
                }));
            }
        }
        edges.push(out.into_iter().collect());
    }
    edges
}

/// Parse the workspace manifests into a transitive dependency closure:
/// crate dir → set of crate dirs it (transitively) depends on.
pub fn dependency_closure(manifests: &[Manifest]) -> BTreeMap<String, BTreeSet<String>> {
    // Workspace alias → crate dir, from [workspace.dependencies] paths.
    let mut alias_dir: BTreeMap<String, String> = BTreeMap::new();
    for m in manifests {
        if m.rel != "Cargo.toml" {
            continue;
        }
        let mut in_ws_deps = false;
        for line in m.text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_ws_deps = line == "[workspace.dependencies]";
                continue;
            }
            if !in_ws_deps {
                continue;
            }
            if let Some((alias, rest)) = line.split_once('=') {
                if let Some(dir) = path_value_dir(rest) {
                    alias_dir.insert(alias.trim().to_string(), dir);
                }
            }
        }
    }

    // Direct deps per crate dir.
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in manifests {
        let crate_dir = if m.rel == "Cargo.toml" {
            "clic".to_string() // the root facade package
        } else {
            match m
                .rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
            {
                Some(d) => d.to_string(),
                None => continue,
            }
        };
        let deps = direct.entry(crate_dir).or_default();
        let mut in_deps = false;
        for line in m.text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                let section = line.trim_matches(['[', ']']).trim();
                in_deps = section == "dependencies" || section == "dev-dependencies";
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, rest)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let alias = key.strip_suffix(".workspace").unwrap_or(key).trim();
            let dir = if let Some(d) = path_value_dir(rest) {
                Some(d)
            } else {
                alias_dir.get(alias).cloned()
            };
            if let Some(d) = dir {
                deps.insert(d);
            }
        }
    }

    // Transitive closure (the DAG is tiny; iterate to fixpoint).
    let mut closed = direct.clone();
    loop {
        let mut grew = false;
        let snapshot = closed.clone();
        for deps in closed.values_mut() {
            let add: BTreeSet<String> = deps
                .iter()
                .filter_map(|d| snapshot.get(d))
                .flatten()
                .filter(|d| !deps.contains(*d))
                .cloned()
                .collect();
            if !add.is_empty() {
                deps.extend(add);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    closed
}

/// Extract the crate dir from a `path = "crates/sim"` / `{ path = "../sim" }`
/// TOML value fragment.
fn path_value_dir(rest: &str) -> Option<String> {
    let pos = rest.find("path")?;
    let after = rest[pos + 4..].trim_start().strip_prefix('=')?;
    let after = after.trim_start().strip_prefix('"')?;
    let end = after.find('"')?;
    let path = &after[..end];
    path.rsplit('/').next().map(|s| {
        if s == "." || s.is_empty() {
            "clic".to_string()
        } else {
            s.to_string()
        }
    })
}

/// Reachability from `roots`: `parent[i]` is the predecessor of `i` on a
/// shortest path from some root (roots point to themselves). `None` means
/// unreachable.
pub fn reach(g: &Graph, roots: &[usize]) -> Vec<Option<usize>> {
    let mut parent: Vec<Option<usize>> = vec![None; g.items.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if parent[r].is_none() {
            parent[r] = Some(r);
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &g.edges[u] {
            if parent[v].is_none() {
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// The root→`sink` call chain implied by a [`reach`] parent array, as
/// qualified item names (outermost first).
pub fn path_to(g: &Graph, parent: &[Option<usize>], sink: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut cur = sink;
    loop {
        chain.push(g.items[cur].qualified());
        match parent[cur] {
            Some(p) if p != cur => cur = p,
            _ => break,
        }
    }
    chain.reverse();
    chain
}

/// Render the call graph as DOT, one `subgraph cluster` per crate
/// (layered layout in Graphviz), test items excluded. Deterministic:
/// items are already in (file, line) order and edges are sorted.
pub fn render_dot(g: &Graph) -> String {
    let mut out = String::from("digraph clic {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
    let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, it) in g.items.iter().enumerate() {
        if !it.is_test {
            by_crate.entry(&it.crate_name).or_default().push(id);
        }
    }
    for (krate, ids) in &by_crate {
        let _ = writeln!(out, "  subgraph \"cluster_{krate}\" {{");
        let _ = writeln!(out, "    label=\"{krate}\";");
        for &id in ids {
            let it = &g.items[id];
            let label = match &it.owner {
                Some(o) => format!("{o}::{}", it.name),
                None => it.name.clone(),
            };
            let _ = writeln!(out, "    n{id} [label=\"{label}\"];");
        }
        let _ = writeln!(out, "  }}");
    }
    for (id, outs) in g.edges.iter().enumerate() {
        if g.items[id].is_test {
            continue;
        }
        for &v in outs {
            if !g.items[v].is_test {
                let _ = writeln!(out, "  n{id} -> n{v};");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
        Workspace {
            root: std::path::PathBuf::new(),
            files: files
                .into_iter()
                .map(|(rel, krate, text)| SourceFile {
                    rel: rel.to_string(),
                    crate_name: krate.to_string(),
                    is_lib_root: false,
                    is_test_source: false,
                    text: text.to_string(),
                })
                .collect(),
            manifests: Vec::new(),
        }
    }

    #[test]
    fn calls_resolve_by_name_and_arity() {
        let g = build(&ws(vec![(
            "crates/a/src/lib.rs",
            "a",
            "pub fn top() { helper(1); }\n\
             fn helper(x: u32) {}\n\
             fn helper_far(x: u32, y: u32) {}\n",
        )]));
        let top = g.items.iter().position(|i| i.name == "top").unwrap();
        let helper = g.items.iter().position(|i| i.name == "helper").unwrap();
        let far = g.items.iter().position(|i| i.name == "helper_far").unwrap();
        assert!(g.edges[top].contains(&helper));
        assert!(!g.edges[top].contains(&far));
    }

    #[test]
    fn arity_mismatch_widens_not_drops() {
        // A single candidate with the wrong arity still gets the edge —
        // the count may be our own closure-comma miscount.
        let g = build(&ws(vec![(
            "crates/a/src/lib.rs",
            "a",
            "pub fn top() { run(|a, b| a + b); }\nfn run(f: F) {}\n",
        )]));
        let top = g.items.iter().position(|i| i.name == "top").unwrap();
        let run = g.items.iter().position(|i| i.name == "run").unwrap();
        assert!(g.edges[top].contains(&run));
    }

    #[test]
    fn reachability_and_paths() {
        let g = build(&ws(vec![(
            "crates/a/src/lib.rs",
            "a",
            "pub fn entry() { mid(); }\nfn mid() { deep(); }\nfn deep() {}\nfn orphan() {}\n",
        )]));
        let entry = g.items.iter().position(|i| i.name == "entry").unwrap();
        let deep = g.items.iter().position(|i| i.name == "deep").unwrap();
        let orphan = g.items.iter().position(|i| i.name == "orphan").unwrap();
        let parent = reach(&g, &[entry]);
        assert!(parent[deep].is_some());
        assert!(parent[orphan].is_none());
        assert_eq!(
            path_to(&g, &parent, deep),
            vec!["a::entry", "a::mid", "a::deep"]
        );
    }

    #[test]
    fn dot_is_layered_by_crate() {
        let g = build(&ws(vec![
            ("crates/a/src/lib.rs", "a", "pub fn one() { two(); }\n"),
            ("crates/b/src/lib.rs", "b", "pub fn two() {}\n"),
        ]));
        let dot = render_dot(&g);
        assert!(dot.contains("subgraph \"cluster_a\""));
        assert!(dot.contains("subgraph \"cluster_b\""));
        assert!(dot.contains("->"));
    }

    #[test]
    fn dependency_closure_is_transitive() {
        let manifests = vec![
            Manifest {
                rel: "Cargo.toml".to_string(),
                text: "[workspace.dependencies]\nclic-sim = { path = \"crates/sim\" }\n\
                       clic-ethernet = { path = \"crates/ethernet\" }\n"
                    .to_string(),
            },
            Manifest {
                rel: "crates/ethernet/Cargo.toml".to_string(),
                text: "[dependencies]\nclic-sim.workspace = true\n".to_string(),
            },
            Manifest {
                rel: "crates/hw/Cargo.toml".to_string(),
                text: "[dependencies]\nclic-ethernet.workspace = true\n".to_string(),
            },
        ];
        let closed = dependency_closure(&manifests);
        assert!(closed["hw"].contains("ethernet"));
        assert!(closed["hw"].contains("sim"));
        assert!(!closed["ethernet"].contains("hw"));
    }

    #[test]
    fn cross_crate_edges_respect_the_dependency_dag() {
        let mut w = ws(vec![
            (
                "crates/sim/src/lib.rs",
                "sim",
                "pub fn tick() { helper(); }\n",
            ),
            ("crates/bench/src/lib.rs", "bench", "pub fn helper() {}\n"),
        ]);
        w.manifests = vec![
            Manifest {
                rel: "Cargo.toml".to_string(),
                text: "[workspace.dependencies]\nclic-sim = { path = \"crates/sim\" }\n"
                    .to_string(),
            },
            Manifest {
                rel: "crates/sim/Cargo.toml".to_string(),
                text: "[dependencies]\n".to_string(),
            },
            Manifest {
                rel: "crates/bench/Cargo.toml".to_string(),
                text: "[dependencies]\nclic-sim.workspace = true\n".to_string(),
            },
        ];
        let g = build(&w);
        let tick = g.items.iter().position(|i| i.name == "tick").unwrap();
        // sim does not depend on bench: no edge despite the name match.
        assert!(g.edges[tick].is_empty());
    }

    #[test]
    fn trait_impl_methods_accept_callback_edges() {
        // `os` dispatches a handler trait object; the impl lives in
        // `core`, which depends on `os`. The upward edge must survive the
        // DAG filter — but only for trait-impl methods, not inherent ones.
        let mut w = ws(vec![
            (
                "crates/os/src/lib.rs",
                "os",
                "pub fn dispatch(h: &dyn Handler) { h.handle(1); h.inherent(1); }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "core",
                "impl Handler for ClicModule { fn handle(&self, f: u32) {} }\n\
                 impl ClicModule { fn inherent(&self, f: u32) {} }\n",
            ),
        ]);
        w.manifests = vec![
            Manifest {
                rel: "Cargo.toml".to_string(),
                text: "[workspace.dependencies]\nclic-os = { path = \"crates/os\" }\n".to_string(),
            },
            Manifest {
                rel: "crates/os/Cargo.toml".to_string(),
                text: "[dependencies]\n".to_string(),
            },
            Manifest {
                rel: "crates/core/Cargo.toml".to_string(),
                text: "[dependencies]\nclic-os.workspace = true\n".to_string(),
            },
        ];
        let g = build(&w);
        let dispatch = g.items.iter().position(|i| i.name == "dispatch").unwrap();
        let handle = g.items.iter().position(|i| i.name == "handle").unwrap();
        let inherent = g.items.iter().position(|i| i.name == "inherent").unwrap();
        assert!(g.items[handle].trait_method);
        assert!(!g.items[inherent].trait_method);
        assert!(g.edges[dispatch].contains(&handle));
        assert!(!g.edges[dispatch].contains(&inherent));
    }
}
