//! Parsing of `// lint:allow(<rule>, reason="...")` annotations.
//!
//! An allow annotation suppresses one rule on the line it sits on, or —
//! when written as a standalone comment — on the line directly below it.
//! The `reason` is mandatory and must be non-empty: every exception to a
//! workspace invariant carries its audit trail in the source. Annotations
//! that are malformed, name an unknown rule, or suppress nothing are
//! themselves violations (`malformed-allow` / `unused-allow`), so stale
//! annotations cannot accumulate.

use crate::lexer::LineComment;

/// A successfully parsed allow annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the annotation sits on.
    pub line: u32,
    /// Rule it suppresses.
    pub rule: String,
    /// The audit reason.
    pub reason: String,
}

/// A syntactically invalid annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedAllow {
    /// 1-based line the annotation sits on.
    pub line: u32,
    /// What is wrong with it.
    pub error: String,
}

/// Result of scanning a file's comments for annotations.
#[derive(Debug, Default)]
pub struct Allows {
    /// Well-formed annotations.
    pub ok: Vec<Allow>,
    /// Broken annotations (reported as `malformed-allow`).
    pub malformed: Vec<MalformedAllow>,
}

/// Extract every `lint:allow` annotation from a file's line comments.
pub fn parse(comments: &[LineComment]) -> Allows {
    let mut out = Allows::default();
    for c in comments {
        let Some(pos) = c.text.find("lint:allow") else {
            continue;
        };
        match parse_one(&c.text[pos + "lint:allow".len()..]) {
            Ok((rule, reason)) => out.ok.push(Allow {
                line: c.line,
                rule,
                reason,
            }),
            Err(error) => out.malformed.push(MalformedAllow {
                line: c.line,
                error,
            }),
        }
    }
    out
}

/// Parse `(<rule>, reason="...")` from the text following `lint:allow`.
fn parse_one(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `lint:allow`".to_string());
    };
    let rule: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .collect();
    if rule.is_empty() {
        return Err("missing rule name".to_string());
    }
    let rest = rest[rule.len()..].trim_start();
    let Some(rest) = rest.strip_prefix(',') else {
        return Err(format!(
            "missing `, reason=\"...\"` after rule `{rule}` (a reason is mandatory)"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("reason") else {
        return Err("expected `reason=\"...\"`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Err("reason must be a quoted string".to_string());
    };
    let Some(end) = rest.find('"') else {
        return Err("unterminated reason string".to_string());
    };
    let reason = rest[..end].to_string();
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    let rest = rest[end + 1..].trim_start();
    if !rest.starts_with(')') {
        return Err("expected `)` closing the annotation".to_string());
    }
    Ok((rule, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: u32, text: &str) -> LineComment {
        LineComment {
            line,
            text: text.to_string(),
        }
    }

    #[test]
    fn well_formed_annotation() {
        let a = parse(&[comment(
            4,
            r#" lint:allow(no-unwrap, reason="fmt::Write to String is infallible")"#,
        )]);
        assert!(a.malformed.is_empty());
        assert_eq!(a.ok.len(), 1);
        assert_eq!(a.ok[0].rule, "no-unwrap");
        assert_eq!(a.ok[0].reason, "fmt::Write to String is infallible");
        assert_eq!(a.ok[0].line, 4);
    }

    #[test]
    fn reason_is_mandatory() {
        let a = parse(&[comment(1, "lint:allow(no-unwrap)")]);
        assert!(a.ok.is_empty());
        assert_eq!(a.malformed.len(), 1);
        assert!(a.malformed[0].error.contains("mandatory"));
    }

    #[test]
    fn empty_reason_rejected() {
        let a = parse(&[comment(1, r#"lint:allow(no-unwrap, reason="  ")"#)]);
        assert_eq!(a.malformed.len(), 1);
        assert!(a.malformed[0].error.contains("empty"));
    }

    #[test]
    fn reason_may_contain_parens() {
        let a = parse(&[comment(
            1,
            r#"lint:allow(unordered-collection, reason="keyed lookups only (never iterated)")"#,
        )]);
        assert_eq!(a.ok.len(), 1);
        assert_eq!(a.ok[0].reason, "keyed lookups only (never iterated)");
    }

    #[test]
    fn unrelated_comments_ignored() {
        let a = parse(&[comment(1, "just a comment about lint policy")]);
        assert!(a.ok.is_empty());
        assert!(a.malformed.is_empty());
    }
}
