//! `clic-analyze`: a dependency-free static-analysis pass over the CLIC
//! workspace.
//!
//! The simulation's headline guarantee is determinism: every figure in
//! `figures_full.txt` is a pure function of configuration and seed. That
//! guarantee is easy to break silently — one `Instant::now()` in a
//! timeout path, one `HashMap` iteration feeding an event queue — so this
//! crate enforces it *statically*, as a CI gate, instead of hoping the
//! golden tests catch the drift.
//!
//! The analyzer is deliberately self-contained: a hand-rolled lexer
//! ([`lexer`]), not `syn`, because the workspace builds offline and the
//! linter must never acquire dependencies the build forbids elsewhere
//! ([`rules::check_manifest`] enforces exactly that).
//!
//! Pipeline: [`workspace::discover`] enumerates library sources and
//! manifests → [`catalog::parse`] re-reads the observability catalog from
//! source → [`rules::analyze`] applies the per-crate policy table per
//! file, then [`items::parse_items`] splits every file into function
//! items, [`graph`] resolves their calls conservatively into a
//! workspace call graph (filtered by the crate-dependency DAG), and
//! [`flow`] walks it for the reachability families (determinism taint,
//! panic reach, catalog liveness) — each finding carrying its full
//! root→sink call chain — before everything settles against the allow
//! annotations and renders via [`diag::render_human`] /
//! [`diag::render_json`]. `--graph` exports the call graph as DOT.
//!
//! Audited exceptions: `// lint:allow(<rule>, reason="...")` ([`allow`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// CI runs this crate under `-W clippy::pedantic`. Two pedantic classes
// are opted out wholesale: `must_use_candidate` (pure-function noise on
// an internal tool) and `missing_errors_doc` (every fallible API here
// returns io::Error or a self-describing String).
#![allow(clippy::must_use_candidate, clippy::missing_errors_doc)]

pub mod allow;
pub mod catalog;
pub mod diag;
pub mod flow;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use diag::Diag;
pub use rules::{analyze, Report, RULES};
