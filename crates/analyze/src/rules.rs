//! The lint rules and the analysis driver.
//!
//! Three rule families plus the dependency lint, scoped by a per-crate
//! policy table (see [`policy`]):
//!
//! * **determinism** — `wall-clock`, `ad-hoc-rng`, `unordered-collection`:
//!   simulation crates must be pure functions of configuration and seed,
//!   so wall-clock time, OS-seeded randomness and iteration-order-unstable
//!   collections are denied there;
//! * **observability names** — `metric-name`, `stage-name`, `dead-name`,
//!   `catalog-dup`, `catalog-order`, `catalog-parse`: every name literal
//!   recorded into the metrics registry or trace sink must be registered
//!   in `crates/sim/src/catalog.rs`, and every catalog entry must be
//!   recorded somewhere;
//! * **API hygiene** — `no-unwrap`, `crate-header`: no
//!   `unwrap()`/`expect()`/`panic!` in non-test library code of the
//!   protocol crates, and every library crate carries
//!   `#![deny(missing_docs)]` + `#![forbid(unsafe_code)]`;
//! * **dependency policy** — `paths-only-deps`: every dependency in every
//!   workspace manifest must be a path or workspace dependency, locking in
//!   the offline-build guarantee.
//!
//! Audited exceptions are written `// lint:allow(<rule>, reason="...")`
//! on (or directly above) the offending line; see [`crate::allow`].

use crate::allow;
use crate::catalog::{parse as parse_catalog, strip_node_prefix, Catalog, Kind};
use crate::diag::Diag;
use crate::lexer::{lex, Lexed, TokKind};
use crate::workspace::{discover, Manifest, SourceFile, Workspace};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// Every rule: `(name, what it enforces)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "wall-clock",
        "no std::time::Instant / SystemTime in simulation crates",
    ),
    (
        "ad-hoc-rng",
        "no thread_rng / rand::random / OS-entropy RNGs in simulation crates",
    ),
    (
        "unordered-collection",
        "no HashMap / HashSet in simulation crates",
    ),
    (
        "metric-name",
        "metric name literals must be registered in crates/sim/src/catalog.rs",
    ),
    (
        "stage-name",
        "trace stage literals must be registered in crates/sim/src/catalog.rs",
    ),
    (
        "dead-name",
        "catalog entries must be recorded somewhere in library code",
    ),
    ("catalog-dup", "catalog entries must be unique"),
    ("catalog-order", "catalog tables must be sorted by name"),
    ("catalog-parse", "the catalog must exist and parse"),
    (
        "no-unwrap",
        "no unwrap()/expect()/panic! in non-test core/ethernet/sim library code",
    ),
    (
        "crate-header",
        "library crates must carry #![deny(missing_docs)] and #![forbid(unsafe_code)]",
    ),
    (
        "paths-only-deps",
        "all dependencies must be path/workspace deps (offline build)",
    ),
    (
        "unused-allow",
        "lint:allow annotations must suppress something",
    ),
    (
        "malformed-allow",
        "lint:allow annotations must be well-formed with a reason",
    ),
];

/// Crates whose behaviour feeds simulated results: all determinism rules
/// apply, with no wall-clock or unordered-collection escape hatch short of
/// an audited annotation.
pub const SIM_CRATES: &[&str] = &[
    "sim", "core", "os", "hw", "ethernet", "tcpip", "mpi", "gamma", "cluster",
];

/// Crates under the `no-unwrap` hygiene rule.
pub const NO_UNWRAP_CRATES: &[&str] = &["core", "ethernet", "sim"];

/// Crates exempt from the observability-name rules: dependency stand-ins
/// (their string literals model foreign APIs) and the analyzer itself
/// (its literals are rule data).
pub const NAME_EXEMPT_CRATES: &[&str] =
    &["shim-bytes", "shim-criterion", "shim-proptest", "analyze"];

/// Files that define the observability machinery: name literals inside
/// them are API docs/tests, not recordings.
pub const OBS_INFRA_FILES: &[&str] = &[
    "crates/sim/src/metrics.rs",
    "crates/sim/src/trace.rs",
    "crates/sim/src/catalog.rs",
    "crates/sim/src/timeseries.rs",
];

/// Per-crate rule applicability. `bench` and the shims legitimately read
/// the host clock (they measure real elapsed time); only simulation
/// crates must stay virtual-time-pure.
#[derive(Debug, Clone, Copy)]
pub struct Policy {
    /// `wall-clock` + `ad-hoc-rng` + `unordered-collection` apply.
    pub determinism: bool,
    /// `metric-name` / `stage-name` extraction applies.
    pub names: bool,
    /// `no-unwrap` applies.
    pub no_unwrap: bool,
}

/// Look up the policy for a workspace crate directory name.
pub fn policy(crate_name: &str) -> Policy {
    Policy {
        determinism: SIM_CRATES.contains(&crate_name),
        names: !NAME_EXEMPT_CRATES.contains(&crate_name),
        no_unwrap: NO_UNWRAP_CRATES.contains(&crate_name),
    }
}

/// Analysis result.
#[derive(Debug)]
pub struct Report {
    /// All violations, sorted by `(file, line, rule)`.
    pub diags: Vec<Diag>,
    /// Number of files scanned (sources + manifests).
    pub files_scanned: usize,
}

/// Observability-name usage accumulated across files, for the dead-name
/// check.
#[derive(Debug, Default)]
pub struct Usage {
    /// `(name, kind)` pairs recorded or read anywhere in library code.
    pub metrics: BTreeSet<(String, Kind)>,
    /// Stage names emitted anywhere in library code.
    pub stages: BTreeSet<String>,
}

/// Run the full analysis over the workspace at `root`.
pub fn analyze(root: &Path) -> io::Result<Report> {
    let ws = discover(root)?;
    Ok(analyze_workspace(&ws))
}

/// Run the full analysis over an already-discovered workspace.
pub fn analyze_workspace(ws: &Workspace) -> Report {
    let mut diags = Vec::new();
    let mut usage = Usage::default();

    // The catalog.
    let found = ws
        .files
        .iter()
        .find(|f| f.rel == "crates/sim/src/catalog.rs");
    let catalog = if let Some(f) = found {
        match parse_catalog(&f.text) {
            Ok(c) => {
                diags.extend(check_catalog(&c));
                c
            }
            Err(e) => {
                diags.push(Diag {
                    rule: "catalog-parse",
                    file: f.rel.clone(),
                    line: 0,
                    message: e,
                    suggestion: "keep METRICS/STAGES as arrays of struct literals whose first \
                                 string literal is the name"
                        .to_string(),
                });
                Catalog::default()
            }
        }
    } else {
        diags.push(Diag {
            rule: "catalog-parse",
            file: "crates/sim/src/catalog.rs".to_string(),
            line: 0,
            message: "observability catalog not found".to_string(),
            suggestion: "create crates/sim/src/catalog.rs with METRICS and STAGES tables"
                .to_string(),
        });
        Catalog::default()
    };

    // Per-file rules.
    for f in &ws.files {
        diags.extend(check_file(f, &catalog, &mut usage));
    }

    // Dead catalog entries.
    if !catalog.metrics.is_empty() {
        diags.extend(check_dead_names(&catalog, &usage));
    }

    // Manifests.
    for m in &ws.manifests {
        diags.extend(check_manifest(m));
    }

    diags.sort_by_key(Diag::key);
    Report {
        files_scanned: ws.files.len() + ws.manifests.len(),
        diags,
    }
}

/// Catalog self-checks: duplicates and ordering.
pub fn check_catalog(c: &Catalog) -> Vec<Diag> {
    let mut diags = Vec::new();
    let file = "crates/sim/src/catalog.rs".to_string();
    let mut seen: BTreeSet<(String, Option<Kind>)> = BTreeSet::new();
    for e in &c.metrics {
        if !seen.insert((e.name.clone(), e.kind)) {
            diags.push(Diag {
                rule: "catalog-dup",
                file: file.clone(),
                line: e.line,
                message: format!(
                    "metric `{}` ({}) registered more than once",
                    e.name,
                    e.kind.map_or("?", Kind::name)
                ),
                suggestion: "remove the duplicate entry".to_string(),
            });
        }
    }
    let mut seen_stages: BTreeSet<String> = BTreeSet::new();
    for e in &c.stages {
        if !seen_stages.insert(e.name.clone()) {
            diags.push(Diag {
                rule: "catalog-dup",
                file: file.clone(),
                line: e.line,
                message: format!("stage `{}` registered more than once", e.name),
                suggestion: "remove the duplicate entry".to_string(),
            });
        }
    }
    for w in c.metrics.windows(2) {
        if (&w[0].name, w[0].kind) > (&w[1].name, w[1].kind) {
            diags.push(Diag {
                rule: "catalog-order",
                file: file.clone(),
                line: w[1].line,
                message: format!("METRICS not sorted: `{}` after `{}`", w[1].name, w[0].name),
                suggestion: "keep the table sorted by (name, kind) so diffs stay one-line"
                    .to_string(),
            });
        }
    }
    for w in c.stages.windows(2) {
        if w[0].name > w[1].name {
            diags.push(Diag {
                rule: "catalog-order",
                file: file.clone(),
                line: w[1].line,
                message: format!("STAGES not sorted: `{}` after `{}`", w[1].name, w[0].name),
                suggestion: "keep the table sorted by name so diffs stay one-line".to_string(),
            });
        }
    }
    diags
}

/// Catalog entries never recorded anywhere in library code.
pub fn check_dead_names(catalog: &Catalog, usage: &Usage) -> Vec<Diag> {
    let mut diags = Vec::new();
    let file = "crates/sim/src/catalog.rs".to_string();
    for e in &catalog.metrics {
        let Some(kind) = e.kind else { continue };
        if !usage.metrics.contains(&(e.name.clone(), kind)) {
            diags.push(Diag {
                rule: "dead-name",
                file: file.clone(),
                line: e.line,
                message: format!(
                    "metric `{}` ({}) is registered but never recorded or read",
                    e.name,
                    kind.name()
                ),
                suggestion: "record it somewhere or remove the catalog entry".to_string(),
            });
        }
    }
    for e in &catalog.stages {
        if !usage.stages.contains(&e.name) {
            diags.push(Diag {
                rule: "dead-name",
                file: file.clone(),
                line: e.line,
                message: format!("stage `{}` is registered but never emitted", e.name),
                suggestion: "emit it somewhere or remove the catalog entry".to_string(),
            });
        }
    }
    diags
}

/// A candidate violation before allow-annotation filtering.
struct Candidate {
    rule: &'static str,
    line: u32,
    message: String,
    suggestion: String,
}

/// Run every per-file rule on one source file.
pub fn check_file(f: &SourceFile, catalog: &Catalog, usage: &mut Usage) -> Vec<Diag> {
    let pol = policy(&f.crate_name);
    let lexed = lex(&f.text);
    let tests = test_regions(&lexed);
    let in_test = |line: u32| tests.iter().any(|&(a, b)| line >= a && line <= b);
    let allows = allow::parse(&lexed.comments);

    let mut cands: Vec<Candidate> = Vec::new();

    if pol.determinism {
        wall_clock(&lexed, &mut cands);
        ad_hoc_rng(&lexed, &mut cands);
        unordered_collections(&lexed, &mut cands);
    }
    if pol.names && !OBS_INFRA_FILES.contains(&f.rel.as_str()) {
        observability_names(&lexed, catalog, usage, &in_test, &mut cands);
    }
    if pol.no_unwrap {
        no_unwrap(&lexed, &mut cands);
    }
    if f.is_lib_root {
        crate_header(&lexed, &mut cands);
    }

    // Allow filtering: an annotation on the candidate's line or the line
    // directly above suppresses it.
    let mut used = vec![false; allows.ok.len()];
    let mut diags = Vec::new();
    for c in cands {
        if in_test(c.line) && c.rule != "crate-header" {
            continue;
        }
        let suppressed = allows.ok.iter().enumerate().any(|(i, a)| {
            let hit = a.rule == c.rule && (a.line == c.line || a.line + 1 == c.line);
            if hit {
                used[i] = true;
            }
            hit
        });
        if !suppressed {
            diags.push(Diag {
                rule: c.rule,
                file: f.rel.clone(),
                line: c.line,
                message: c.message,
                suggestion: c.suggestion,
            });
        }
    }

    for m in &allows.malformed {
        diags.push(Diag {
            rule: "malformed-allow",
            file: f.rel.clone(),
            line: m.line,
            message: format!("malformed lint:allow annotation: {}", m.error),
            suggestion: "write `// lint:allow(<rule>, reason=\"...\")`".to_string(),
        });
    }
    for (i, a) in allows.ok.iter().enumerate() {
        if !RULES.iter().any(|(r, _)| *r == a.rule) {
            diags.push(Diag {
                rule: "malformed-allow",
                file: f.rel.clone(),
                line: a.line,
                message: format!("lint:allow names unknown rule `{}`", a.rule),
                suggestion: "run `clic-analyze --list-rules` for the rule set".to_string(),
            });
        } else if !used[i] {
            diags.push(Diag {
                rule: "unused-allow",
                file: f.rel.clone(),
                line: a.line,
                message: format!("lint:allow({}) suppresses nothing", a.rule),
                suggestion: "remove the stale annotation".to_string(),
            });
        }
    }
    diags
}

/// `#[cfg(test)]` / `#[test]` item extents as inclusive line ranges.
fn test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.toks;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(lexed.is_punct(i, '#') && lexed.is_punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        let Some(close) = matching(lexed, i + 1, '[', ']') else {
            break;
        };
        let (mut has_cfg, mut has_test, mut has_not) = (false, false, false);
        for t in &toks[i + 2..close] {
            if let TokKind::Ident(s) = &t.kind {
                match s.as_str() {
                    "cfg" => has_cfg = true,
                    "test" => has_test = true,
                    "not" => has_not = true,
                    _ => {}
                }
            }
        }
        let bare_test = close == i + 3 && lexed.is_ident(i + 2, "test");
        if !(bare_test || (has_cfg && has_test && !has_not)) {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then span the annotated item.
        let mut k = close + 1;
        while lexed.is_punct(k, '#') && lexed.is_punct(k + 1, '[') {
            match matching(lexed, k + 1, '[', ']') {
                Some(end) => k = end + 1,
                None => break,
            }
        }
        let mut l = k;
        while l < toks.len() && !lexed.is_punct(l, '{') && !lexed.is_punct(l, ';') {
            l += 1;
        }
        let end = if l >= toks.len() {
            toks.last().map_or(0, |t| t.line)
        } else if lexed.is_punct(l, ';') {
            toks[l].line
        } else {
            match matching(lexed, l, '{', '}') {
                Some(m) => toks[m].line,
                None => toks.last().map_or(0, |t| t.line),
            }
        };
        regions.push((toks[i].line, end));
        // Resume after the region (line-based skip keeps it simple).
        while i < toks.len() && toks[i].line <= end {
            i += 1;
        }
    }
    regions
}

/// Index of the token closing the `open` at index `at`.
fn matching(lexed: &Lexed, at: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for j in at..lexed.toks.len() {
        if lexed.is_punct(j, open) {
            depth += 1;
        } else if lexed.is_punct(j, close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// `wall-clock`: `Instant::now`, `SystemTime`, or a `use` of `std::time`'s
/// clock types.
fn wall_clock(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        let called_now = lexed.is_path_sep(i + 1) && lexed.is_ident(i + 3, "now");
        let time_path = i >= 3 && lexed.is_ident(i - 3, "time") && lexed.is_path_sep(i - 2);
        let in_use_time = in_use_of(lexed, i, "time");
        if called_now || time_path || in_use_time {
            cands.push(Candidate {
                rule: "wall-clock",
                line: t.line,
                message: format!("`{name}` (wall-clock time) in a simulation crate"),
                suggestion: "simulated components must use SimTime; wall-clock measurement \
                             belongs in clic-bench"
                    .to_string(),
            });
        }
    }
}

/// `ad-hoc-rng`: OS-seeded or implicit-state randomness.
fn ad_hoc_rng(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        let flagged = match name.as_str() {
            "thread_rng" | "from_entropy" | "getrandom" | "RandomState" => true,
            "random" => i >= 3 && lexed.is_ident(i - 3, "rand") && lexed.is_path_sep(i - 2),
            _ => false,
        };
        if flagged {
            cands.push(Candidate {
                rule: "ad-hoc-rng",
                line: t.line,
                message: format!("`{name}` (non-seeded randomness) in a simulation crate"),
                suggestion: "all randomness must flow through the seeded SimRng on the Sim"
                    .to_string(),
            });
        }
    }
}

/// `unordered-collection`: HashMap/HashSet, one finding per line.
fn unordered_collections(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    let mut last_line = 0u32;
    for t in &lexed.toks {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        if (name == "HashMap" || name == "HashSet") && t.line != last_line {
            last_line = t.line;
            cands.push(Candidate {
                rule: "unordered-collection",
                line: t.line,
                message: format!("`{name}` (iteration order unstable) in a simulation crate"),
                suggestion: "use BTreeMap/BTreeSet (or sort at the emission point) so iteration \
                             order can never reach simulated behaviour or output"
                    .to_string(),
            });
        }
    }
}

/// Whether token `i` sits inside a `use` item whose path mentions
/// `segment`.
fn in_use_of(lexed: &Lexed, i: usize, segment: &str) -> bool {
    // Walk back to the start of the statement.
    let mut j = i;
    while j > 0 {
        match &lexed.toks[j - 1].kind {
            TokKind::Punct(';' | '}') => break,
            _ => j -= 1,
        }
    }
    if !lexed.is_ident(j, "use") {
        return false;
    }
    lexed.toks[j..i]
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == segment))
}

/// Metric-recording and trace-emitting method calls: `(method, kind)`.
const METRIC_CALLS: &[(&str, Kind)] = &[
    ("counter", Kind::Counter),
    ("counter_add", Kind::Counter),
    ("counter_inc", Kind::Counter),
    ("sum_counters", Kind::Counter),
    ("gauge", Kind::Gauge),
    ("gauge_peak", Kind::Gauge),
    ("gauge_set", Kind::Gauge),
    ("max_gauge_peak", Kind::Gauge),
    ("histogram", Kind::Histogram),
    ("observe", Kind::Histogram),
    // Timeline series lookups take catalog names too: a series that
    // cannot resolve through the catalog is unreadable, so the linter
    // treats these like the metric read APIs above.
    ("counter_series", Kind::Counter),
    ("gauge_series", Kind::Gauge),
];

/// Trace-emission methods whose first string literal is a stage name.
const STAGE_CALLS: &[&str] = &["begin", "end", "instant"];

/// Compile-time interning resolvers from `clic_sim::catalog`: free
/// functions (called as `counter_id("...")` or `catalog::counter_id(...)`)
/// whose string literal names a catalog entry of the given kind. A call
/// counts as a recording for the dead-name pass — the returned id is what
/// the hot path feeds to the `_id` metric APIs.
const METRIC_ID_CALLS: &[(&str, Kind)] = &[
    ("counter_id", Kind::Counter),
    ("gauge_id", Kind::Gauge),
    ("histogram_id", Kind::Histogram),
];

/// Stage-id resolver from `clic_sim::catalog` (see [`METRIC_ID_CALLS`]).
const STAGE_ID_CALL: &str = "stage_id";

/// `metric-name` / `stage-name`: extract every name literal passed to a
/// recording call and check it against the catalog. Usage is accumulated
/// for the dead-name pass (test code counts toward neither rule).
fn observability_names(
    lexed: &Lexed,
    catalog: &Catalog,
    usage: &mut Usage,
    in_test: &dyn Fn(u32) -> bool,
    cands: &mut Vec<Candidate>,
) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        if !lexed.is_punct(i + 1, '(') {
            continue;
        }
        // Method-call shape (`.counter_inc(`) or interning-resolver shape
        // (`counter_id(` — a free function, so NOT preceded by `.`, which
        // also keeps `fn counter_id(` definitions out via OBS_INFRA_FILES
        // and the literal requirement below).
        let is_method = i >= 1 && lexed.is_punct(i - 1, '.');
        let (metric_kind, is_stage) = if is_method {
            (
                METRIC_CALLS
                    .iter()
                    .find(|(m, _)| m == name)
                    .map(|&(_, k)| k),
                STAGE_CALLS.contains(&name.as_str()),
            )
        } else {
            (
                METRIC_ID_CALLS
                    .iter()
                    .find(|(m, _)| m == name)
                    .map(|&(_, k)| k),
                name == STAGE_ID_CALL,
            )
        };
        if metric_kind.is_none() && !is_stage {
            continue;
        }
        let Some(close) = matching(lexed, i + 1, '(', ')') else {
            continue;
        };
        let Some(lit) = lexed.toks[i + 2..close].iter().find_map(|t| match &t.kind {
            TokKind::Str(s) => Some(s.clone()),
            _ => None,
        }) else {
            continue;
        };
        if in_test(t.line) {
            continue;
        }
        if let Some(kind) = metric_kind {
            let stripped = strip_node_prefix(&lit).to_string();
            usage.metrics.insert((stripped.clone(), kind));
            if !catalog.has_metric(&stripped, kind) {
                cands.push(Candidate {
                    rule: "metric-name",
                    line: t.line,
                    message: format!(
                        "metric name `{lit}` ({}) is not registered in the catalog",
                        kind.name()
                    ),
                    suggestion: "add it to METRICS in crates/sim/src/catalog.rs (sorted) with a \
                                 help string"
                        .to_string(),
                });
            }
        } else {
            usage.stages.insert(lit.clone());
            if !catalog.has_stage(&lit) {
                cands.push(Candidate {
                    rule: "stage-name",
                    line: t.line,
                    message: format!("trace stage `{lit}` is not registered in the catalog"),
                    suggestion: "add it to STAGES in crates/sim/src/catalog.rs (sorted) with its \
                                 emitting layer"
                        .to_string(),
                });
            }
        }
    }
}

/// `no-unwrap`: `.unwrap()`, `.expect(...)`, `panic!` in library code.
fn no_unwrap(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        let hit = match name.as_str() {
            "unwrap" | "expect" => {
                i >= 1 && lexed.is_punct(i - 1, '.') && lexed.is_punct(i + 1, '(')
            }
            "panic" => lexed.is_punct(i + 1, '!'),
            _ => false,
        };
        if hit {
            let shown = if name == "panic" {
                "panic!".to_string()
            } else {
                format!(".{name}()")
            };
            cands.push(Candidate {
                rule: "no-unwrap",
                line: t.line,
                message: format!("`{shown}` in non-test library code"),
                suggestion: "return a typed error (ClicError/TraceError) or, for a proven \
                             invariant, annotate with lint:allow(no-unwrap, reason=\"...\")"
                    .to_string(),
            });
        }
    }
}

/// `crate-header`: required inner attributes on a crate root.
fn crate_header(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    let (mut docs_ok, mut unsafe_ok) = (false, false);
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if lexed.is_punct(i, '#') && lexed.is_punct(i + 1, '!') && lexed.is_punct(i + 2, '[') {
            if let Some(close) = matching(lexed, i + 2, '[', ']') {
                let idents: Vec<&str> = toks[i + 3..close]
                    .iter()
                    .filter_map(|t| match &t.kind {
                        TokKind::Ident(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .collect();
                if let Some(first) = idents.first() {
                    if (*first == "deny" || *first == "forbid") && idents.contains(&"missing_docs")
                    {
                        docs_ok = true;
                    }
                    if *first == "forbid" && idents.contains(&"unsafe_code") {
                        unsafe_ok = true;
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    let line = toks.first().map_or(1, |t| t.line);
    if !docs_ok {
        cands.push(Candidate {
            rule: "crate-header",
            line,
            message: "crate root lacks `#![deny(missing_docs)]`".to_string(),
            suggestion: "every public item in this workspace is documented; deny keeps it that way"
                .to_string(),
        });
    }
    if !unsafe_ok {
        cands.push(Candidate {
            rule: "crate-header",
            line,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            suggestion: "the workspace is a simulation; nothing here needs unsafe".to_string(),
        });
    }
}

/// `paths-only-deps`: every dependency in every manifest must be a
/// path/workspace dependency.
pub fn check_manifest(m: &Manifest) -> Vec<Diag> {
    let mut diags = Vec::new();
    let mut section = String::new();
    // `[dependencies.foo]` sub-table support: (dep name, header line, ok).
    let mut pending: Option<(String, u32, bool)> = None;

    let flush = |pending: &mut Option<(String, u32, bool)>, diags: &mut Vec<Diag>| {
        if let Some((dep, line, ok)) = pending.take() {
            if !ok {
                diags.push(non_path_diag(&m.rel, line, &dep));
            }
        }
    };

    for (idx, raw) in m.text.lines().enumerate() {
        let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = strip_toml_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut pending, &mut diags);
            section = line.trim_matches(['[', ']']).trim().to_string();
            if let Some(dep) = dep_subtable(&section) {
                pending = Some((dep.to_string(), line_no, false));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if let Some(p) = pending.as_mut() {
            if key == "path" || (key == "workspace" && value.starts_with("true")) {
                p.2 = true;
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let ok = key.ends_with(".workspace")
            || has_toml_key(value, "path")
            || (has_toml_key(value, "workspace") && value.contains("true"));
        if !ok {
            diags.push(non_path_diag(&m.rel, line_no, key));
        }
    }
    flush(&mut pending, &mut diags);
    diags
}

fn non_path_diag(file: &str, line: u32, dep: &str) -> Diag {
    Diag {
        rule: "paths-only-deps",
        file: file.to_string(),
        line,
        message: format!("dependency `{dep}` is not a path/workspace dependency"),
        suggestion: "the workspace builds offline: route external deps through a crates/shim-* \
                     stand-in and [workspace.dependencies]"
            .to_string(),
    }
}

fn is_dep_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.ends_with(".dependencies")
}

/// `dependencies.foo` / `dev-dependencies.foo` / `target.X.dependencies.foo`
/// sub-table headers: returns the dep name.
fn dep_subtable(section: &str) -> Option<&str> {
    for marker in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(pos) = section.find(marker) {
            let rest = &section[pos + marker.len()..];
            if !rest.is_empty() && !rest.contains('.') && !rest.contains("dependencies") {
                // Exclude `workspace.dependencies` (not a sub-table).
                if pos == 0 || section[..pos].ends_with('.') {
                    let prefix = &section[..pos];
                    if prefix != "workspace." {
                        return Some(rest);
                    }
                }
            }
        }
    }
    None
}

/// `key = ...` present in a TOML inline table string.
fn has_toml_key(value: &str, key: &str) -> bool {
    let mut rest = value;
    while let Some(pos) = rest.find(key) {
        let before_ok = pos == 0 || matches!(rest.as_bytes()[pos - 1], b'{' | b',' | b' ' | b'\t');
        let after = rest[pos + key.len()..].trim_start();
        if before_ok && after.starts_with('=') {
            return true;
        }
        rest = &rest[pos + key.len()..];
    }
    false
}

/// Drop a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}
