//! The lint rules and the analysis driver.
//!
//! Four per-site rule families plus the dependency lint, scoped by a
//! per-crate policy table (see [`policy`]):
//!
//! * **determinism** — `wall-clock`, `ad-hoc-rng`, `unordered-collection`:
//!   simulation crates must be pure functions of configuration and seed,
//!   so wall-clock time, OS-seeded randomness and iteration-order-unstable
//!   collections are denied there;
//! * **overflow soundness** — `time-overflow`: unchecked `+ - *` and
//!   narrowing `as` casts on time/sequence-typed values in simulation
//!   crates, where a silent wrap corrupts the event order instead of
//!   crashing;
//! * **observability names** — `metric-name`, `stage-name`, `dead-name`,
//!   `catalog-dup`, `catalog-order`, `catalog-parse`: every name literal
//!   recorded into the metrics registry or trace sink must be registered
//!   in `crates/sim/src/catalog.rs`, and every catalog entry must be
//!   recorded somewhere;
//! * **API hygiene** — `no-unwrap`, `crate-header`: no
//!   `unwrap()`/`expect()`/`panic!` in non-test library code of the
//!   protocol crates, and every library crate carries
//!   `#![deny(missing_docs)]` + `#![forbid(unsafe_code)]`;
//! * **dependency policy** — `paths-only-deps`: every dependency in every
//!   workspace manifest must be a path or workspace dependency, locking in
//!   the offline-build guarantee.
//!
//! On top of the per-site rules, [`analyze_workspace`] builds the
//! workspace call graph ([`crate::graph`]) and runs the flow families
//! ([`crate::flow`]): `determinism-taint`, `panic-reach`,
//! `unreachable-name`. Their findings carry a root→sink call path and are
//! filtered against the same `lint:allow` annotations as everything else
//! — allow bookkeeping is centralized here precisely because a graph
//! finding in file A can be suppressed by an annotation in file A while
//! its root lives in file B.
//!
//! Audited exceptions are written `// lint:allow(<rule>, reason="...")`
//! on (or directly above) the offending line; see [`crate::allow`].

use crate::allow;
use crate::catalog::{parse as parse_catalog, strip_node_prefix, Catalog, Kind};
use crate::diag::Diag;
use crate::flow;
use crate::graph;
use crate::lexer::{lex, Lexed, TokKind};
use crate::workspace::{discover, Manifest, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// Every rule: `(name, what it enforces)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "wall-clock",
        "no std::time::Instant / SystemTime in simulation crates",
    ),
    (
        "ad-hoc-rng",
        "no thread_rng / rand::random / OS-entropy RNGs in simulation crates",
    ),
    (
        "unordered-collection",
        "no HashMap / HashSet in simulation crates",
    ),
    (
        "time-overflow",
        "no unchecked + - * or narrowing casts on time/sequence values in simulation crates",
    ),
    (
        "determinism-taint",
        "no call path from simulation public API to wall-clock/RNG/env sources",
    ),
    (
        "panic-reach",
        "no panic site reachable from core/ethernet/sim public API",
    ),
    (
        "unreachable-name",
        "catalog names must be recorded by code reachable from job entry points",
    ),
    (
        "metric-name",
        "metric name literals must be registered in crates/sim/src/catalog.rs",
    ),
    (
        "stage-name",
        "trace stage literals must be registered in crates/sim/src/catalog.rs",
    ),
    (
        "dead-name",
        "catalog entries must be recorded somewhere in library code",
    ),
    ("catalog-dup", "catalog entries must be unique"),
    ("catalog-order", "catalog tables must be sorted by name"),
    ("catalog-parse", "the catalog must exist and parse"),
    (
        "no-unwrap",
        "no unwrap()/expect()/panic! in non-test core/ethernet/sim library code",
    ),
    (
        "crate-header",
        "library crates must carry #![deny(missing_docs)] and #![forbid(unsafe_code)]",
    ),
    (
        "paths-only-deps",
        "all dependencies must be path/workspace deps (offline build)",
    ),
    (
        "unused-allow",
        "lint:allow annotations must suppress something",
    ),
    (
        "malformed-allow",
        "lint:allow annotations must be well-formed with a reason",
    ),
];

/// Crates whose behaviour feeds simulated results: all determinism rules
/// apply, with no wall-clock or unordered-collection escape hatch short of
/// an audited annotation.
pub const SIM_CRATES: &[&str] = &[
    "sim", "core", "os", "hw", "ethernet", "tcpip", "mpi", "gamma", "cluster",
];

/// Crates under the `no-unwrap` hygiene rule.
pub const NO_UNWRAP_CRATES: &[&str] = &["core", "ethernet", "sim"];

/// Crates exempt from the observability-name rules: dependency stand-ins
/// (their string literals model foreign APIs) and the analyzer itself
/// (its literals are rule data).
pub const NAME_EXEMPT_CRATES: &[&str] =
    &["shim-bytes", "shim-criterion", "shim-proptest", "analyze"];

/// Files that define the observability machinery: name literals inside
/// them are API docs/tests, not recordings.
pub const OBS_INFRA_FILES: &[&str] = &[
    "crates/sim/src/metrics.rs",
    "crates/sim/src/trace.rs",
    "crates/sim/src/catalog.rs",
    "crates/sim/src/timeseries.rs",
];

/// Per-crate rule applicability. `bench` and the shims legitimately read
/// the host clock (they measure real elapsed time); only simulation
/// crates must stay virtual-time-pure.
#[derive(Debug, Clone, Copy)]
// Independent per-rule-family switches, not a state machine.
#[allow(clippy::struct_excessive_bools)]
pub struct Policy {
    /// `wall-clock` + `ad-hoc-rng` + `unordered-collection` apply.
    pub determinism: bool,
    /// `time-overflow` applies.
    pub overflow: bool,
    /// `metric-name` / `stage-name` extraction applies.
    pub names: bool,
    /// `no-unwrap` applies.
    pub no_unwrap: bool,
}

/// Look up the policy for a workspace crate directory name.
pub fn policy(crate_name: &str) -> Policy {
    Policy {
        determinism: SIM_CRATES.contains(&crate_name),
        overflow: SIM_CRATES.contains(&crate_name),
        names: !NAME_EXEMPT_CRATES.contains(&crate_name),
        no_unwrap: NO_UNWRAP_CRATES.contains(&crate_name),
    }
}

/// The relaxed policy row for integration-test sources (scanned only
/// under `--include-tests`): the determinism rules still apply — a test
/// that reads the wall clock can mask nondeterminism in what it asserts —
/// but name registration, panic hygiene and overflow style are test-local
/// concerns the workspace gate does not impose.
pub fn policy_test(crate_name: &str) -> Policy {
    Policy {
        determinism: SIM_CRATES.contains(&crate_name) || crate_name == "clic",
        overflow: false,
        names: false,
        no_unwrap: false,
    }
}

/// Analysis result.
#[derive(Debug)]
pub struct Report {
    /// All violations, sorted by `(file, line, rule)`.
    pub diags: Vec<Diag>,
    /// Number of files scanned (sources + manifests).
    pub files_scanned: usize,
}

/// Observability-name usage accumulated across files, for the dead-name
/// check.
#[derive(Debug, Default)]
pub struct Usage {
    /// `(name, kind)` pairs recorded or read anywhere in library code.
    pub metrics: BTreeSet<(String, Kind)>,
    /// Stage names emitted anywhere in library code.
    pub stages: BTreeSet<String>,
}

/// Run the full analysis over the workspace at `root`.
pub fn analyze(root: &Path) -> io::Result<Report> {
    let ws = discover(root)?;
    Ok(analyze_workspace(&ws))
}

/// Per-file allow-annotation state retained across the per-site and graph
/// passes, so every finding — wherever it was computed — settles against
/// the annotations of the file it anchors to, and stale annotations are
/// reported exactly once at the end.
struct AllowState {
    rel: String,
    allows: allow::Allows,
    used: Vec<bool>,
}

/// Run the full analysis over an already-discovered workspace.
pub fn analyze_workspace(ws: &Workspace) -> Report {
    let mut diags = Vec::new();
    let mut usage = Usage::default();

    // The catalog.
    let found = ws
        .files
        .iter()
        .find(|f| f.rel == "crates/sim/src/catalog.rs");
    let catalog = if let Some(f) = found {
        match parse_catalog(&f.text) {
            Ok(c) => {
                diags.extend(check_catalog(&c));
                c
            }
            Err(e) => {
                diags.push(Diag::site(
                    "catalog-parse",
                    f.rel.clone(),
                    0,
                    e,
                    "keep METRICS/STAGES as arrays of struct literals whose first string \
                     literal is the name",
                ));
                Catalog::default()
            }
        }
    } else {
        diags.push(Diag::site(
            "catalog-parse",
            "crates/sim/src/catalog.rs",
            0,
            "observability catalog not found",
            "create crates/sim/src/catalog.rs with METRICS and STAGES tables",
        ));
        Catalog::default()
    };

    // Per-site pass: candidates per file, allow state retained.
    let mut states: Vec<AllowState> = Vec::with_capacity(ws.files.len());
    let mut pending: Vec<(usize, Diag)> = Vec::new();
    for f in &ws.files {
        let lexed = lex(&f.text);
        let allows = allow::parse(&lexed.comments);
        let cands = file_candidates(f, &lexed, &catalog, &mut usage);
        let si = states.len();
        states.push(AllowState {
            rel: f.rel.clone(),
            used: vec![false; allows.ok.len()],
            allows,
        });
        pending.extend(cands.into_iter().map(|c| {
            (
                si,
                Diag::site(c.rule, f.rel.clone(), c.line, c.message, c.suggestion),
            )
        }));
    }

    // Graph pass: call-graph rule families over the whole workspace.
    let g = graph::build(ws);
    let by_rel: BTreeMap<&str, usize> = states
        .iter()
        .enumerate()
        .map(|(i, s)| (s.rel.as_str(), i))
        .collect();
    for f in flow::run(&g, &catalog, &flow::FlowPolicy::default()) {
        let d =
            Diag::site(f.rule, f.file.clone(), f.line, f.message, f.suggestion).with_path(f.path);
        match by_rel.get(f.file.as_str()) {
            Some(&si) => pending.push((si, d)),
            None => diags.push(d),
        }
    }

    // Central allow filtering, then the stale-annotation sweep.
    for (si, d) in pending {
        let st = &mut states[si];
        if !suppressed(&st.allows, &mut st.used, d.rule, d.line) {
            diags.push(d);
        }
    }
    for st in &states {
        diags.extend(allow_meta(&st.rel, &st.allows, &st.used));
    }

    // Dead catalog entries.
    if !catalog.metrics.is_empty() {
        diags.extend(check_dead_names(&catalog, &usage));
    }

    // Manifests.
    for m in &ws.manifests {
        diags.extend(check_manifest(m));
    }

    diags.sort_by_key(Diag::key);
    Report {
        files_scanned: ws.files.len() + ws.manifests.len(),
        diags,
    }
}

/// Catalog self-checks: duplicates and ordering.
pub fn check_catalog(c: &Catalog) -> Vec<Diag> {
    let mut diags = Vec::new();
    let file = "crates/sim/src/catalog.rs";
    let mut seen: BTreeSet<(String, Option<Kind>)> = BTreeSet::new();
    for e in &c.metrics {
        if !seen.insert((e.name.clone(), e.kind)) {
            diags.push(Diag::site(
                "catalog-dup",
                file,
                e.line,
                format!(
                    "metric `{}` ({}) registered more than once",
                    e.name,
                    e.kind.map_or("?", Kind::name)
                ),
                "remove the duplicate entry",
            ));
        }
    }
    let mut seen_stages: BTreeSet<String> = BTreeSet::new();
    for e in &c.stages {
        if !seen_stages.insert(e.name.clone()) {
            diags.push(Diag::site(
                "catalog-dup",
                file,
                e.line,
                format!("stage `{}` registered more than once", e.name),
                "remove the duplicate entry",
            ));
        }
    }
    for w in c.metrics.windows(2) {
        if (&w[0].name, w[0].kind) > (&w[1].name, w[1].kind) {
            diags.push(Diag::site(
                "catalog-order",
                file,
                w[1].line,
                format!("METRICS not sorted: `{}` after `{}`", w[1].name, w[0].name),
                "keep the table sorted by (name, kind) so diffs stay one-line",
            ));
        }
    }
    for w in c.stages.windows(2) {
        if w[0].name > w[1].name {
            diags.push(Diag::site(
                "catalog-order",
                file,
                w[1].line,
                format!("STAGES not sorted: `{}` after `{}`", w[1].name, w[0].name),
                "keep the table sorted by name so diffs stay one-line",
            ));
        }
    }
    diags
}

/// Catalog entries never recorded anywhere in library code.
pub fn check_dead_names(catalog: &Catalog, usage: &Usage) -> Vec<Diag> {
    let mut diags = Vec::new();
    let file = "crates/sim/src/catalog.rs";
    for e in &catalog.metrics {
        let Some(kind) = e.kind else { continue };
        if !usage.metrics.contains(&(e.name.clone(), kind)) {
            diags.push(Diag::site(
                "dead-name",
                file,
                e.line,
                format!(
                    "metric `{}` ({}) is registered but never recorded or read",
                    e.name,
                    kind.name()
                ),
                "record it somewhere or remove the catalog entry",
            ));
        }
    }
    for e in &catalog.stages {
        if !usage.stages.contains(&e.name) {
            diags.push(Diag::site(
                "dead-name",
                file,
                e.line,
                format!("stage `{}` is registered but never emitted", e.name),
                "emit it somewhere or remove the catalog entry",
            ));
        }
    }
    diags
}

/// A candidate violation before allow-annotation filtering.
struct Candidate {
    rule: &'static str,
    line: u32,
    message: String,
    suggestion: String,
}

/// Run every per-file rule on one source file — the standalone single-file
/// entry point used by fixture tests. [`analyze_workspace`] uses the same
/// candidate generation but settles allows centrally so graph findings
/// participate too.
pub fn check_file(f: &SourceFile, catalog: &Catalog, usage: &mut Usage) -> Vec<Diag> {
    let lexed = lex(&f.text);
    let allows = allow::parse(&lexed.comments);
    let cands = file_candidates(f, &lexed, catalog, usage);
    let mut used = vec![false; allows.ok.len()];
    let mut diags = Vec::new();
    for c in cands {
        if !suppressed(&allows, &mut used, c.rule, c.line) {
            diags.push(Diag::site(
                c.rule,
                f.rel.clone(),
                c.line,
                c.message,
                c.suggestion,
            ));
        }
    }
    diags.extend(allow_meta(&f.rel, &allows, &used));
    diags
}

/// Generate every per-site candidate for one file, already filtered for
/// `#[cfg(test)]` regions (integration-test sources skip that filter: the
/// whole file is test code and the relaxed [`policy_test`] row is what
/// applies).
fn file_candidates(
    f: &SourceFile,
    lexed: &Lexed,
    catalog: &Catalog,
    usage: &mut Usage,
) -> Vec<Candidate> {
    let pol = if f.is_test_source {
        policy_test(&f.crate_name)
    } else {
        policy(&f.crate_name)
    };
    let tests = test_regions(lexed);
    let in_test = |line: u32| tests.iter().any(|&(a, b)| line >= a && line <= b);

    let mut cands: Vec<Candidate> = Vec::new();
    if pol.determinism {
        wall_clock(lexed, &mut cands);
        ad_hoc_rng(lexed, &mut cands);
        unordered_collections(lexed, &mut cands);
    }
    if pol.overflow {
        time_overflow(lexed, &mut cands);
    }
    if pol.names && !OBS_INFRA_FILES.contains(&f.rel.as_str()) {
        observability_names(lexed, catalog, usage, &in_test, &mut cands);
    }
    if pol.no_unwrap {
        no_unwrap(lexed, &mut cands);
    }
    if f.is_lib_root {
        crate_header(lexed, &mut cands);
    }

    if f.is_test_source {
        cands
    } else {
        cands
            .into_iter()
            .filter(|c| c.rule == "crate-header" || !in_test(c.line))
            .collect()
    }
}

/// Whether an allow for `allow_rule` covers a diagnostic for `diag_rule`.
/// The graph families accept their per-site cousins: a site audited for
/// `no-unwrap` is audited for reachability too, and an audited wall-clock
/// or RNG read is an audited taint source.
fn allow_covers(diag_rule: &str, allow_rule: &str) -> bool {
    allow_rule == diag_rule
        || (diag_rule == "panic-reach" && allow_rule == "no-unwrap")
        || (diag_rule == "determinism-taint" && matches!(allow_rule, "wall-clock" | "ad-hoc-rng"))
}

/// Settle one candidate against a file's annotations: an annotation on
/// the candidate's line or the line directly above suppresses it (and is
/// marked used).
fn suppressed(allows: &allow::Allows, used: &mut [bool], rule: &'static str, line: u32) -> bool {
    let mut hit = false;
    for (i, a) in allows.ok.iter().enumerate() {
        if allow_covers(rule, &a.rule) && (a.line == line || a.line + 1 == line) {
            used[i] = true;
            hit = true;
        }
    }
    hit
}

/// The stale-annotation sweep: unknown rule names and annotations that
/// suppressed nothing.
fn allow_meta(rel: &str, allows: &allow::Allows, used: &[bool]) -> Vec<Diag> {
    let mut diags = Vec::new();
    for m in &allows.malformed {
        diags.push(Diag::site(
            "malformed-allow",
            rel,
            m.line,
            format!("malformed lint:allow annotation: {}", m.error),
            "write `// lint:allow(<rule>, reason=\"...\")`",
        ));
    }
    for (i, a) in allows.ok.iter().enumerate() {
        if !RULES.iter().any(|(r, _)| *r == a.rule) {
            diags.push(Diag::site(
                "malformed-allow",
                rel,
                a.line,
                format!("lint:allow names unknown rule `{}`", a.rule),
                "run `clic-analyze --list-rules` for the rule set",
            ));
        } else if !used[i] {
            diags.push(Diag::site(
                "unused-allow",
                rel,
                a.line,
                format!("lint:allow({}) suppresses nothing", a.rule),
                "remove the stale annotation",
            ));
        }
    }
    diags
}

/// `#[cfg(test)]` / `#[test]` item extents as inclusive line ranges.
pub fn test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.toks;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(lexed.is_punct(i, '#') && lexed.is_punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        let Some(close) = matching(lexed, i + 1, '[', ']') else {
            break;
        };
        let (mut has_cfg, mut has_test, mut has_not) = (false, false, false);
        for t in &toks[i + 2..close] {
            if let TokKind::Ident(s) = &t.kind {
                match s.as_str() {
                    "cfg" => has_cfg = true,
                    "test" => has_test = true,
                    "not" => has_not = true,
                    _ => {}
                }
            }
        }
        let bare_test = close == i + 3 && lexed.is_ident(i + 2, "test");
        if !(bare_test || (has_cfg && has_test && !has_not)) {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then span the annotated item.
        let mut k = close + 1;
        while lexed.is_punct(k, '#') && lexed.is_punct(k + 1, '[') {
            match matching(lexed, k + 1, '[', ']') {
                Some(end) => k = end + 1,
                None => break,
            }
        }
        let mut l = k;
        while l < toks.len() && !lexed.is_punct(l, '{') && !lexed.is_punct(l, ';') {
            l += 1;
        }
        let end = if l >= toks.len() {
            toks.last().map_or(0, |t| t.line)
        } else if lexed.is_punct(l, ';') {
            toks[l].line
        } else {
            match matching(lexed, l, '{', '}') {
                Some(m) => toks[m].line,
                None => toks.last().map_or(0, |t| t.line),
            }
        };
        regions.push((toks[i].line, end));
        // Resume after the region (line-based skip keeps it simple).
        while i < toks.len() && toks[i].line <= end {
            i += 1;
        }
    }
    regions
}

/// Index of the token closing the `open` at index `at`.
fn matching(lexed: &Lexed, at: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for j in at..lexed.toks.len() {
        if lexed.is_punct(j, open) {
            depth += 1;
        } else if lexed.is_punct(j, close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// `wall-clock`: `Instant::now`, `SystemTime`, or a `use` of `std::time`'s
/// clock types.
fn wall_clock(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        let called_now = lexed.is_path_sep(i + 1) && lexed.is_ident(i + 3, "now");
        let time_path = i >= 3 && lexed.is_ident(i - 3, "time") && lexed.is_path_sep(i - 2);
        let in_use_time = in_use_of(lexed, i, "time");
        if called_now || time_path || in_use_time {
            cands.push(Candidate {
                rule: "wall-clock",
                line: t.line,
                message: format!("`{name}` (wall-clock time) in a simulation crate"),
                suggestion: "simulated components must use SimTime; wall-clock measurement \
                             belongs in clic-bench"
                    .to_string(),
            });
        }
    }
}

/// `ad-hoc-rng`: OS-seeded or implicit-state randomness.
fn ad_hoc_rng(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        let flagged = match name.as_str() {
            "thread_rng" | "from_entropy" | "getrandom" | "RandomState" => true,
            "random" => i >= 3 && lexed.is_ident(i - 3, "rand") && lexed.is_path_sep(i - 2),
            _ => false,
        };
        if flagged {
            cands.push(Candidate {
                rule: "ad-hoc-rng",
                line: t.line,
                message: format!("`{name}` (non-seeded randomness) in a simulation crate"),
                suggestion: "all randomness must flow through the seeded SimRng on the Sim"
                    .to_string(),
            });
        }
    }
}

/// `unordered-collection`: HashMap/HashSet, one finding per line.
fn unordered_collections(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    let mut last_line = 0u32;
    for t in &lexed.toks {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        if (name == "HashMap" || name == "HashSet") && t.line != last_line {
            last_line = t.line;
            cands.push(Candidate {
                rule: "unordered-collection",
                line: t.line,
                message: format!("`{name}` (iteration order unstable) in a simulation crate"),
                suggestion: "use BTreeMap/BTreeSet (or sort at the emission point) so iteration \
                             order can never reach simulated behaviour or output"
                    .to_string(),
            });
        }
    }
}

/// Time/sequence atom for the `time-overflow` rule: an identifier with a
/// `ns`/`us`/`seq` underscore segment (`now_ns`, `next_seq`, `delay_us`,
/// or the lone words themselves) — including the `.as_ns()` / `.as_us()`
/// `SimTime` accessors, whose names contain the segment by construction.
/// `from_*` constructors (`SimDuration::from_ns(1)`) are excluded: they
/// return the wrapper types whose operators are the audited guard sites,
/// not a raw integer.
fn is_time_atom(kind: &TokKind) -> bool {
    match kind {
        TokKind::Ident(s) => {
            let mut segs = s.split('_');
            if segs.next() == Some("from") {
                return false;
            }
            s.split('_')
                .any(|seg| seg == "ns" || seg == "us" || seg == "seq")
        }
        _ => false,
    }
}

/// Casts wide enough to make a subsequent `+ - *` sound for u64
/// nanosecond/sequence magnitudes.
fn is_widening(kind: &TokKind) -> bool {
    matches!(kind, TokKind::Ident(s) if matches!(s.as_str(), "u128" | "i128" | "i64" | "f64"))
}

/// `time-overflow`: unchecked `+ - *` (including compound assignment) and
/// narrowing `as` casts adjacent to a time/sequence atom. The rule is a
/// heuristic over names — the workspace consistently suffixes nanosecond
/// and sequence values — and accepts a widening cast in the surrounding
/// token window as proof of soundness, which is exactly the audited
/// pattern (`u128::from(x_ns) * y`).
fn time_overflow(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    // Token window around an operator searched for atoms and widenings.
    const WINDOW: usize = 6;
    let toks = &lexed.toks;
    let mut last_line = 0u32;
    let window_has = |center: usize, pred: &dyn Fn(&TokKind) -> bool| -> bool {
        let lo = center.saturating_sub(WINDOW);
        let hi = (center + WINDOW + 1).min(toks.len());
        toks[lo..hi].iter().any(|t| {
            // Stop tokens would over-complicate this; a 6-token radius is
            // tight enough that leakage across `;` boundaries is rare and
            // only ever makes the rule more conservative.
            pred(&t.kind)
        })
    };
    for i in 0..toks.len() {
        let line = toks[i].line;
        match &toks[i].kind {
            TokKind::Punct(op @ ('+' | '-' | '*')) => {
                // Binary position only: the previous token must end an
                // expression (`a + b`, `f() * x`, `v[i] - y`, `seq += 1`).
                let prev_expr = i >= 1
                    && (matches!(toks[i - 1].kind, TokKind::Ident(_) | TokKind::Num)
                        || lexed.is_punct(i - 1, ')')
                        || lexed.is_punct(i - 1, ']'));
                // `->` is an arrow, not a subtraction.
                let arrow = *op == '-' && lexed.is_punct(i + 1, '>');
                if !prev_expr || arrow || line == last_line {
                    continue;
                }
                if window_has(i, &is_time_atom) && !window_has(i, &is_widening) {
                    last_line = line;
                    cands.push(Candidate {
                        rule: "time-overflow",
                        line,
                        message: format!("unchecked `{op}` on a time/sequence-typed value"),
                        suggestion: "use checked_/saturating_ arithmetic or widen to u128/i64 \
                                     first; audited escape: lint:allow(time-overflow, \
                                     reason=\"...\")"
                            .to_string(),
                    });
                }
            }
            TokKind::Ident(s) if s == "as" => {
                let narrow = matches!(
                    lexed.kind(i + 1),
                    Some(TokKind::Ident(t)) if matches!(t.as_str(), "u8" | "u16" | "u32")
                );
                if !narrow || line == last_line {
                    continue;
                }
                let lo = i.saturating_sub(WINDOW);
                if toks[lo..i].iter().any(|t| is_time_atom(&t.kind)) {
                    last_line = line;
                    cands.push(Candidate {
                        rule: "time-overflow",
                        line,
                        message: "narrowing `as` cast on a time/sequence-typed value".to_string(),
                        suggestion: "keep u64 width or use try_from with an explicit error; \
                                     audited escape: lint:allow(time-overflow, reason=\"...\")"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Whether token `i` sits inside a `use` item whose path mentions
/// `segment`.
fn in_use_of(lexed: &Lexed, i: usize, segment: &str) -> bool {
    // Walk back to the start of the statement.
    let mut j = i;
    while j > 0 {
        match &lexed.toks[j - 1].kind {
            TokKind::Punct(';' | '}') => break,
            _ => j -= 1,
        }
    }
    if !lexed.is_ident(j, "use") {
        return false;
    }
    lexed.toks[j..i]
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == segment))
}

/// Metric-recording and trace-emitting method calls: `(method, kind)`.
pub(crate) const METRIC_CALLS: &[(&str, Kind)] = &[
    ("counter", Kind::Counter),
    ("counter_add", Kind::Counter),
    ("counter_inc", Kind::Counter),
    ("sum_counters", Kind::Counter),
    ("gauge", Kind::Gauge),
    ("gauge_peak", Kind::Gauge),
    ("gauge_set", Kind::Gauge),
    ("max_gauge_peak", Kind::Gauge),
    ("histogram", Kind::Histogram),
    ("observe", Kind::Histogram),
    // Timeline series lookups take catalog names too: a series that
    // cannot resolve through the catalog is unreadable, so the linter
    // treats these like the metric read APIs above.
    ("counter_series", Kind::Counter),
    ("gauge_series", Kind::Gauge),
];

/// Trace-emission methods whose first string literal is a stage name.
pub(crate) const STAGE_CALLS: &[&str] = &["begin", "end", "instant"];

/// Compile-time interning resolvers from `clic_sim::catalog`: free
/// functions (called as `counter_id("...")` or `catalog::counter_id(...)`)
/// whose string literal names a catalog entry of the given kind. A call
/// counts as a recording for the dead-name pass — the returned id is what
/// the hot path feeds to the `_id` metric APIs.
pub(crate) const METRIC_ID_CALLS: &[(&str, Kind)] = &[
    ("counter_id", Kind::Counter),
    ("gauge_id", Kind::Gauge),
    ("histogram_id", Kind::Histogram),
];

/// Stage-id resolver from `clic_sim::catalog` (see [`METRIC_ID_CALLS`]).
pub(crate) const STAGE_ID_CALL: &str = "stage_id";

/// `metric-name` / `stage-name`: extract every name literal passed to a
/// recording call and check it against the catalog. Usage is accumulated
/// for the dead-name pass (test code counts toward neither rule).
fn observability_names(
    lexed: &Lexed,
    catalog: &Catalog,
    usage: &mut Usage,
    in_test: &dyn Fn(u32) -> bool,
    cands: &mut Vec<Candidate>,
) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        if !lexed.is_punct(i + 1, '(') {
            continue;
        }
        // Method-call shape (`.counter_inc(`) or interning-resolver shape
        // (`counter_id(` — a free function, so NOT preceded by `.`, which
        // also keeps `fn counter_id(` definitions out via OBS_INFRA_FILES
        // and the literal requirement below).
        let is_method = i >= 1 && lexed.is_punct(i - 1, '.');
        let (metric_kind, is_stage) = if is_method {
            (
                METRIC_CALLS
                    .iter()
                    .find(|(m, _)| m == name)
                    .map(|&(_, k)| k),
                STAGE_CALLS.contains(&name.as_str()),
            )
        } else {
            (
                METRIC_ID_CALLS
                    .iter()
                    .find(|(m, _)| m == name)
                    .map(|&(_, k)| k),
                name == STAGE_ID_CALL,
            )
        };
        if metric_kind.is_none() && !is_stage {
            continue;
        }
        let Some(close) = matching(lexed, i + 1, '(', ')') else {
            continue;
        };
        let Some(lit) = lexed.toks[i + 2..close].iter().find_map(|t| match &t.kind {
            TokKind::Str(s) => Some(s.clone()),
            _ => None,
        }) else {
            continue;
        };
        if in_test(t.line) {
            continue;
        }
        if let Some(kind) = metric_kind {
            let stripped = strip_node_prefix(&lit).to_string();
            usage.metrics.insert((stripped.clone(), kind));
            if !catalog.has_metric(&stripped, kind) {
                cands.push(Candidate {
                    rule: "metric-name",
                    line: t.line,
                    message: format!(
                        "metric name `{lit}` ({}) is not registered in the catalog",
                        kind.name()
                    ),
                    suggestion: "add it to METRICS in crates/sim/src/catalog.rs (sorted) with a \
                                 help string"
                        .to_string(),
                });
            }
        } else {
            usage.stages.insert(lit.clone());
            if !catalog.has_stage(&lit) {
                cands.push(Candidate {
                    rule: "stage-name",
                    line: t.line,
                    message: format!("trace stage `{lit}` is not registered in the catalog"),
                    suggestion: "add it to STAGES in crates/sim/src/catalog.rs (sorted) with its \
                                 emitting layer"
                        .to_string(),
                });
            }
        }
    }
}

/// `no-unwrap`: `.unwrap()`, `.expect(...)`, `panic!` in library code.
fn no_unwrap(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        let hit = match name.as_str() {
            "unwrap" | "expect" => {
                i >= 1 && lexed.is_punct(i - 1, '.') && lexed.is_punct(i + 1, '(')
            }
            "panic" => lexed.is_punct(i + 1, '!'),
            _ => false,
        };
        if hit {
            let shown = if name == "panic" {
                "panic!".to_string()
            } else {
                format!(".{name}()")
            };
            cands.push(Candidate {
                rule: "no-unwrap",
                line: t.line,
                message: format!("`{shown}` in non-test library code"),
                suggestion: "return a typed error (ClicError/TraceError) or, for a proven \
                             invariant, annotate with lint:allow(no-unwrap, reason=\"...\")"
                    .to_string(),
            });
        }
    }
}

/// `crate-header`: required inner attributes on a crate root.
fn crate_header(lexed: &Lexed, cands: &mut Vec<Candidate>) {
    let (mut docs_ok, mut unsafe_ok) = (false, false);
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if lexed.is_punct(i, '#') && lexed.is_punct(i + 1, '!') && lexed.is_punct(i + 2, '[') {
            if let Some(close) = matching(lexed, i + 2, '[', ']') {
                let idents: Vec<&str> = toks[i + 3..close]
                    .iter()
                    .filter_map(|t| match &t.kind {
                        TokKind::Ident(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .collect();
                if let Some(first) = idents.first() {
                    if (*first == "deny" || *first == "forbid") && idents.contains(&"missing_docs")
                    {
                        docs_ok = true;
                    }
                    if *first == "forbid" && idents.contains(&"unsafe_code") {
                        unsafe_ok = true;
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    let line = toks.first().map_or(1, |t| t.line);
    if !docs_ok {
        cands.push(Candidate {
            rule: "crate-header",
            line,
            message: "crate root lacks `#![deny(missing_docs)]`".to_string(),
            suggestion: "every public item in this workspace is documented; deny keeps it that way"
                .to_string(),
        });
    }
    if !unsafe_ok {
        cands.push(Candidate {
            rule: "crate-header",
            line,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            suggestion: "the workspace is a simulation; nothing here needs unsafe".to_string(),
        });
    }
}

/// `paths-only-deps`: every dependency in every manifest must be a
/// path/workspace dependency.
pub fn check_manifest(m: &Manifest) -> Vec<Diag> {
    let mut diags = Vec::new();
    let mut section = String::new();
    // `[dependencies.foo]` sub-table support: (dep name, header line, ok).
    let mut pending: Option<(String, u32, bool)> = None;

    let flush = |pending: &mut Option<(String, u32, bool)>, diags: &mut Vec<Diag>| {
        if let Some((dep, line, ok)) = pending.take() {
            if !ok {
                diags.push(non_path_diag(&m.rel, line, &dep));
            }
        }
    };

    for (idx, raw) in m.text.lines().enumerate() {
        let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = strip_toml_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut pending, &mut diags);
            section = line.trim_matches(['[', ']']).trim().to_string();
            if let Some(dep) = dep_subtable(&section) {
                pending = Some((dep.to_string(), line_no, false));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if let Some(p) = pending.as_mut() {
            if key == "path" || (key == "workspace" && value.starts_with("true")) {
                p.2 = true;
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let ok = key.ends_with(".workspace")
            || has_toml_key(value, "path")
            || (has_toml_key(value, "workspace") && value.contains("true"));
        if !ok {
            diags.push(non_path_diag(&m.rel, line_no, key));
        }
    }
    flush(&mut pending, &mut diags);
    diags
}

fn non_path_diag(file: &str, line: u32, dep: &str) -> Diag {
    Diag::site(
        "paths-only-deps",
        file,
        line,
        format!("dependency `{dep}` is not a path/workspace dependency"),
        "the workspace builds offline: route external deps through a crates/shim-* stand-in \
         and [workspace.dependencies]",
    )
}

fn is_dep_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.ends_with(".dependencies")
}

/// `dependencies.foo` / `dev-dependencies.foo` / `target.X.dependencies.foo`
/// sub-table headers: returns the dep name.
fn dep_subtable(section: &str) -> Option<&str> {
    for marker in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(pos) = section.find(marker) {
            let rest = &section[pos + marker.len()..];
            if !rest.is_empty() && !rest.contains('.') && !rest.contains("dependencies") {
                // Exclude `workspace.dependencies` (not a sub-table).
                if pos == 0 || section[..pos].ends_with('.') {
                    let prefix = &section[..pos];
                    if prefix != "workspace." {
                        return Some(rest);
                    }
                }
            }
        }
    }
    None
}

/// `key = ...` present in a TOML inline table string.
fn has_toml_key(value: &str, key: &str) -> bool {
    let mut rest = value;
    while let Some(pos) = rest.find(key) {
        let before_ok = pos == 0 || matches!(rest.as_bytes()[pos - 1], b'{' | b',' | b' ' | b'\t');
        let after = rest[pos + key.len()..].trim_start();
        if before_ok && after.starts_with('=') {
            return true;
        }
        rest = &rest[pos + key.len()..];
    }
    false
}

/// Drop a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}
