//! Diagnostics: the violation record plus human and JSON renderers.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Rule identifier (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 when the finding is file-scoped).
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to annotate an audited exception).
    pub suggestion: String,
}

impl Diag {
    /// Sort key: file, then line, then rule.
    pub fn key(&self) -> (String, u32, &'static str) {
        (self.file.clone(), self.line, self.rule)
    }
}

/// Render diagnostics for humans: `file:line: [rule] message` plus an
/// indented `help:` line, then a summary.
pub fn render_human(diags: &[Diag], files_scanned: usize) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        if !d.suggestion.is_empty() {
            let _ = writeln!(out, "    help: {}", d.suggestion);
        }
    }
    if diags.is_empty() {
        let _ = writeln!(
            out,
            "clic-analyze: {files_scanned} files scanned, no violations"
        );
    } else {
        let _ = writeln!(
            out,
            "clic-analyze: {files_scanned} files scanned, {} violation{}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// Render diagnostics as a machine-readable JSON document.
pub fn render_json(diags: &[Diag], files_scanned: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"violations\": {},", diags.len());
    out.push_str("  \"diagnostics\": [\n");
    let rows: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"message\": \"{}\", \"suggestion\": \"{}\"}}",
                escape(d.rule),
                escape(&d.file),
                d.line,
                escape(&d.message),
                escape(&d.suggestion)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diag> {
        vec![Diag {
            rule: "no-unwrap",
            file: "crates/core/src/module.rs".into(),
            line: 7,
            message: "`.unwrap()` in non-test library code".into(),
            suggestion: "return a typed error".into(),
        }]
    }

    #[test]
    fn human_output_has_location_and_summary() {
        let s = render_human(&sample(), 3);
        assert!(s.contains("crates/core/src/module.rs:7: [no-unwrap]"));
        assert!(s.contains("help: return a typed error"));
        assert!(s.contains("3 files scanned, 1 violation\n"));
    }

    #[test]
    fn clean_run_summary() {
        let s = render_human(&[], 10);
        assert!(s.contains("no violations"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let s = render_json(&sample(), 3);
        assert!(s.contains("\"files_scanned\": 3"));
        assert!(s.contains("\"violations\": 1"));
        assert!(s.contains("\"rule\": \"no-unwrap\""));
        // Balanced braces/brackets (cheap structural check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn json_escapes_specials() {
        let mut d = sample();
        d[0].message = "quote \" backslash \\ newline \n".into();
        let s = render_json(&d, 1);
        assert!(s.contains("quote \\\" backslash \\\\ newline \\n"));
    }
}
