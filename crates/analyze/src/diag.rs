//! Diagnostics: the violation record plus human and JSON renderers.
//!
//! Every diagnostic carries the same schema across all rule families:
//! `rule`, `file`, `line`, `message`, `suggestion`, and `path` — the call
//! chain from an analysis root to the offending site. Per-site rules
//! (lexical lints, manifest lints) have an empty `path`; the call-graph
//! families (`determinism-taint`, `panic-reach`, `unreachable-name`)
//! populate it so a violation is actionable without re-running the
//! analysis: the chain names every function between the public surface
//! and the sink.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Rule identifier (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 when the finding is file-scoped).
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to annotate an audited exception).
    pub suggestion: String,
    /// Call chain from an analysis root to the offending site, outermost
    /// first (empty for per-site rules).
    pub path: Vec<String>,
}

impl Diag {
    /// A per-site diagnostic (no call chain).
    pub fn site(
        rule: &'static str,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) -> Diag {
        Diag {
            rule,
            file: file.into(),
            line,
            message: message.into(),
            suggestion: suggestion.into(),
            path: Vec::new(),
        }
    }

    /// Attach a root→sink call chain.
    #[must_use]
    pub fn with_path(mut self, path: Vec<String>) -> Diag {
        self.path = path;
        self
    }

    /// Sort key: file, then line, then rule.
    pub fn key(&self) -> (String, u32, &'static str) {
        (self.file.clone(), self.line, self.rule)
    }
}

/// Render diagnostics for humans: `file:line: [rule] message` plus an
/// indented `help:` line (and, for call-graph findings, the root→sink
/// chain), then a summary.
pub fn render_human(diags: &[Diag], files_scanned: usize) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        if !d.path.is_empty() {
            let _ = writeln!(out, "    path: {}", d.path.join(" -> "));
        }
        if !d.suggestion.is_empty() {
            let _ = writeln!(out, "    help: {}", d.suggestion);
        }
    }
    if diags.is_empty() {
        let _ = writeln!(
            out,
            "clic-analyze: {files_scanned} files scanned, no violations"
        );
    } else {
        let _ = writeln!(
            out,
            "clic-analyze: {files_scanned} files scanned, {} violation{}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// Render one diagnostic as a JSON object (no trailing newline). The field
/// set is identical for every rule family; `path` is `[]` when the rule is
/// per-site.
pub fn render_json_diag(d: &Diag) -> String {
    let path_items: Vec<String> = d
        .path
        .iter()
        .map(|p| format!("\"{}\"", escape(p)))
        .collect();
    format!(
        "{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
         \"message\": \"{}\", \"path\": [{}], \"suggestion\": \"{}\"}}",
        escape(d.rule),
        escape(&d.file),
        d.line,
        escape(&d.message),
        path_items.join(", "),
        escape(&d.suggestion)
    )
}

/// Render diagnostics as a machine-readable JSON document.
pub fn render_json(diags: &[Diag], files_scanned: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"violations\": {},", diags.len());
    out.push_str("  \"diagnostics\": [\n");
    let rows: Vec<String> = diags
        .iter()
        .map(|d| format!("    {}", render_json_diag(d)))
        .collect();
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diag> {
        vec![Diag::site(
            "no-unwrap",
            "crates/core/src/module.rs",
            7,
            "`.unwrap()` in non-test library code",
            "return a typed error",
        )]
    }

    #[test]
    fn human_output_has_location_and_summary() {
        let s = render_human(&sample(), 3);
        assert!(s.contains("crates/core/src/module.rs:7: [no-unwrap]"));
        assert!(s.contains("help: return a typed error"));
        assert!(s.contains("3 files scanned, 1 violation\n"));
    }

    #[test]
    fn human_output_shows_call_path() {
        let d = sample().remove(0).with_path(vec![
            "core::ClicModule::post".to_string(),
            "os::Kernel::tick".to_string(),
        ]);
        let s = render_human(&[d], 1);
        assert!(s.contains("path: core::ClicModule::post -> os::Kernel::tick"));
    }

    #[test]
    fn clean_run_summary() {
        let s = render_human(&[], 10);
        assert!(s.contains("no violations"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let s = render_json(&sample(), 3);
        assert!(s.contains("\"files_scanned\": 3"));
        assert!(s.contains("\"violations\": 1"));
        assert!(s.contains("\"rule\": \"no-unwrap\""));
        // Every diagnostic carries the full schema, path included.
        assert!(s.contains("\"path\": []"));
        // Balanced braces/brackets (cheap structural check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn json_path_is_an_array_of_strings() {
        let d = sample()
            .remove(0)
            .with_path(vec!["a::b".to_string(), "c::d".to_string()]);
        let s = render_json(&[d], 1);
        assert!(s.contains("\"path\": [\"a::b\", \"c::d\"]"));
    }

    #[test]
    fn json_escapes_specials() {
        let mut d = sample();
        d[0].message = "quote \" backslash \\ newline \n".into();
        let s = render_json(&d, 1);
        assert!(s.contains("quote \\\" backslash \\\\ newline \\n"));
    }
}
