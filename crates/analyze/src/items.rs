//! Item-level parsing: functions, methods and the atoms inside their
//! bodies.
//!
//! This sits between the lexer and the call graph. One linear pass over a
//! file's token stream recovers every function item — free functions,
//! `impl`/`trait` methods (with their owning type), and nested test items
//! — along with the facts the graph rules need about each body:
//!
//! * **call sites** (`foo(..)`, `x.foo(..)`, `Type::foo(..)`) with an
//!   argument count, for conservative name+arity resolution;
//! * **bare function references** (`schedule_fn_at(t, tick)`) so closures
//!   and fn pointers handed to the scheduler stay on the graph;
//! * **determinism-taint sources** (wall clock, host RNG, `RandomState`,
//!   thread identity, environment reads);
//! * **panic sites** (`unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`
//!   and, optionally, slice indexing).
//!
//! The parser is deliberately approximate in the same way the lexer is:
//! rustc has already accepted the file, so on confusing input it prefers
//! recording too much (extra call edges make the analysis conservative)
//! over giving up. Closures are *not* separate items: their tokens belong
//! to the enclosing function, which is exactly the attribution the taint
//! pass wants for `schedule_at(move |sim| ...)` arms.

use crate::lexer::{Lexed, TokKind};

/// One function-like item.
#[derive(Debug)]
// Four independent facts about an item, not a state machine.
#[allow(clippy::struct_excessive_bools)]
pub struct Item {
    /// Crate directory name (`sim`, `core`, ...).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Function name (raw-identifier prefix already stripped by the
    /// lexer).
    pub name: String,
    /// Owning `impl`/`trait` type, when this is a method.
    pub owner: Option<String>,
    /// Parameter count, excluding any `self` receiver.
    pub arity: usize,
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Whether the item is `pub` with unrestricted visibility
    /// (`pub(crate)` and narrower do not count: they are not API surface).
    pub is_pub: bool,
    /// Whether the item sits inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Whether the item is a method of a `trait` block or a `impl Trait
    /// for Type` block. Trait methods are dynamic-dispatch targets, so
    /// call resolution lets them be invoked from crates they depend on
    /// (the callback pattern: `os` dispatches a `PacketHandler` that
    /// `core` registered).
    pub trait_method: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Bare references to function names (fn-pointer arguments).
    pub refs: Vec<RefSite>,
    /// Determinism-taint source atoms in the body.
    pub sources: Vec<SourceAtom>,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
}

impl Item {
    /// `crate::Owner::name` / `crate::name` display form used in
    /// diagnostics paths and the DOT export.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}::{}", self.crate_name, o, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// One call site inside a body.
#[derive(Debug)]
pub struct CallSite {
    /// Callee name (last path segment).
    pub name: String,
    /// `Type` in `Type::name(...)` calls; `Self` is already rewritten to
    /// the enclosing impl owner.
    pub qualifier: Option<String>,
    /// Whether this is a `.name(...)` method call.
    pub method: bool,
    /// Number of call arguments (receiver not counted).
    pub arity: usize,
    /// 1-based source line.
    pub line: u32,
    /// First string literal among the arguments (metric/stage name
    /// extraction for the liveness pass).
    pub first_str: Option<String>,
}

/// A bare identifier in argument position that may name a function
/// (fn-pointer / scheduled-arm reference).
#[derive(Debug)]
pub struct RefSite {
    /// The referenced name.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
}

/// What class of determinism-taint source an atom is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `Instant` / `SystemTime` wall-clock reads.
    WallClock,
    /// `thread_rng` / `from_entropy` / `getrandom` / `rand::random`.
    HostRng,
    /// `RandomState` (per-process-seeded hashing).
    RandomState,
    /// `std::thread::current()` / `ThreadId` identity.
    ThreadId,
    /// `std::env::var` / `var_os` environment reads.
    EnvRead,
}

impl SourceKind {
    /// Human label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall-clock time",
            SourceKind::HostRng => "host randomness",
            SourceKind::RandomState => "RandomState hashing",
            SourceKind::ThreadId => "thread identity",
            SourceKind::EnvRead => "environment read",
        }
    }
}

/// A determinism-taint source atom.
#[derive(Debug)]
pub struct SourceAtom {
    /// Which class of source.
    pub kind: SourceKind,
    /// The offending token text (`Instant`, `thread_rng`, ...).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// A site that can panic at runtime.
#[derive(Debug)]
pub struct PanicSite {
    /// Display form: `.unwrap()`, `panic!`, `[..]`, ...
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether this is a slice/array indexing site (reported only under
    /// the opt-in index policy; see `flow::FlowPolicy`).
    pub is_index: bool,
}

/// Keywords that look like calls when followed by `(`. A raw-identifier
/// function named after one of these (`fn r#loop`, called `r#loop()`)
/// is indistinguishable post-lex and its call sites go unrecorded — a
/// conservative gap accepted for a shape that does not occur in this
/// workspace (raw idents here are names like `r#type`, which is not in
/// this set).
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "move", "box", "await", "fn",
    "let", "else", "unsafe", "ref", "mut", "dyn", "impl", "where",
];

/// Identifiers never recorded as bare function references.
const REF_EXCLUDED: &[&str] = &[
    "self", "Self", "None", "Some", "Ok", "Err", "true", "false", "crate", "super",
];

/// Parse every function item in a lexed file.
///
/// `test_regions` are the inclusive line ranges of `#[cfg(test)]` /
/// `#[test]` items (see `rules::test_regions`); items starting inside one
/// are flagged [`Item::is_test`].
pub fn parse_items(
    file: &str,
    crate_name: &str,
    lexed: &Lexed,
    test_regions: &[(u32, u32)],
) -> Vec<Item> {
    let mut items = Vec::new();
    let mut p = Parser {
        lx: lexed,
        file,
        crate_name,
        test_regions,
    };
    p.scan(0, lexed.toks.len(), None, false, &mut items);
    items
}

struct Parser<'a> {
    lx: &'a Lexed,
    file: &'a str,
    crate_name: &'a str,
    test_regions: &'a [(u32, u32)],
}

impl Parser<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Scan tokens in `[from, to)` for items, with `owner` naming the
    /// enclosing `impl`/`trait` type if any and `in_trait` set inside
    /// `trait` blocks and `impl Trait for Type` blocks.
    fn scan(
        &mut self,
        from: usize,
        to: usize,
        owner: Option<&str>,
        in_trait: bool,
        out: &mut Vec<Item>,
    ) {
        let mut i = from;
        while i < to {
            let Some(TokKind::Ident(word)) = self.lx.kind(i) else {
                i += 1;
                continue;
            };
            match word.as_str() {
                "impl" | "trait" => {
                    let is_trait_block = word == "trait";
                    let (name, saw_for, body) = self.impl_header(i, to);
                    match body {
                        Some((open, close)) => {
                            self.scan(
                                open + 1,
                                close,
                                name.as_deref(),
                                is_trait_block || saw_for,
                                out,
                            );
                            i = close + 1;
                        }
                        None => i += 1,
                    }
                }
                "mod" => {
                    // `mod name { ... }`: recurse; `mod name;` moves on.
                    let mut j = i + 1;
                    if matches!(self.lx.kind(j), Some(TokKind::Ident(_))) {
                        j += 1;
                    }
                    if self.lx.is_punct(j, '{') {
                        match matching_in(self.lx, j, to, '{', '}') {
                            Some(close) => {
                                self.scan(j + 1, close, None, false, out);
                                i = close + 1;
                            }
                            None => i = j + 1,
                        }
                    } else {
                        i = j;
                    }
                }
                "fn" => {
                    let (item, next) = self.fn_item(i, to, owner, in_trait);
                    if let Some(item) = item {
                        out.push(item);
                    }
                    i = next;
                }
                // `use`, `struct`, `enum`, `static`, `const`, ...: no
                // function bodies at this level worth special casing —
                // associated consts with block initializers are rare and
                // contain no scheduling logic; skipping one token keeps the
                // scan simple and safe.
                _ => i += 1,
            }
        }
    }

    /// Parse an `impl`/`trait` header starting at `at`; return the subject
    /// type name, whether a `for` keyword was seen (i.e. a trait impl),
    /// and the body brace range.
    fn impl_header(&self, at: usize, to: usize) -> (Option<String>, bool, Option<(usize, usize)>) {
        let lx = self.lx;
        let mut j = at + 1;
        if lx.is_punct(j, '<') {
            j = skip_angles(lx, j, to);
        }
        // Tokens up to `{`: `Type`, `Trait for Type`, `dyn Trait`, paths.
        // The subject is the last path segment seen outside generics — in
        // `impl fmt::Display for SimTime` that is `SimTime`, in
        // `impl Wheel<T>` it is `Wheel`.
        let mut name: Option<String> = None;
        let mut saw_for = false;
        while j < to && !lx.is_punct(j, '{') {
            match lx.kind(j) {
                Some(TokKind::Ident(s)) if s == "for" => {
                    name = None;
                    saw_for = true;
                    j += 1;
                }
                Some(TokKind::Ident(s)) if s == "where" => break,
                Some(TokKind::Ident(s)) if s != "dyn" && s != "mut" => {
                    name = Some(s.clone());
                    j += 1;
                }
                Some(TokKind::Punct('<')) => {
                    j = skip_angles(lx, j, to);
                }
                _ => j += 1,
            }
        }
        while j < to && !lx.is_punct(j, '{') {
            j += 1;
        }
        if j >= to {
            return (name, saw_for, None);
        }
        match matching_in(lx, j, to, '{', '}') {
            Some(close) => (name, saw_for, Some((j, close))),
            None => (name, saw_for, None),
        }
    }

    /// Parse one `fn` item starting at the `fn` keyword. Returns the item
    /// (None for bodyless trait declarations) and the index to resume at.
    fn fn_item(
        &self,
        at: usize,
        to: usize,
        owner: Option<&str>,
        in_trait: bool,
    ) -> (Option<Item>, usize) {
        let lx = self.lx;
        let line = lx.toks[at].line;
        let Some(TokKind::Ident(name)) = lx.kind(at + 1) else {
            return (None, at + 1);
        };
        let name = name.clone();
        let mut j = at + 2;
        if lx.is_punct(j, '<') {
            j = skip_angles(lx, j, to);
        }
        if !lx.is_punct(j, '(') {
            return (None, at + 1);
        }
        let Some(params_close) = matching_in(lx, j, to, '(', ')') else {
            return (None, at + 1);
        };
        let (arity, has_self) = param_shape(lx, j, params_close);

        // Skip return type / where clause to the body `{` or a `;`.
        let mut k = params_close + 1;
        let (mut paren, mut square) = (0i32, 0i32);
        while k < to {
            match lx.kind(k) {
                Some(TokKind::Punct('(')) => paren += 1,
                Some(TokKind::Punct(')')) => paren -= 1,
                Some(TokKind::Punct('[')) => square += 1,
                Some(TokKind::Punct(']')) => square -= 1,
                Some(TokKind::Punct('{')) if paren == 0 && square == 0 => break,
                Some(TokKind::Punct(';')) if paren == 0 && square == 0 => {
                    // Trait method declaration without a body.
                    return (None, k + 1);
                }
                _ => {}
            }
            k += 1;
        }
        if k >= to {
            return (None, to);
        }
        let Some(body_close) = matching_in(lx, k, to, '{', '}') else {
            return (None, to);
        };

        let mut item = Item {
            crate_name: self.crate_name.to_string(),
            file: self.file.to_string(),
            line,
            owner: owner.map(str::to_string),
            arity,
            has_self,
            is_pub: is_pub_at(lx, at),
            is_test: self.in_test(line),
            trait_method: in_trait,
            name,
            calls: Vec::new(),
            refs: Vec::new(),
            sources: Vec::new(),
            panics: Vec::new(),
        };
        scan_body(lx, k + 1, body_close, owner, &mut item);
        (Some(item), body_close + 1)
    }
}

/// Count parameters and detect a `self` receiver between paren indices
/// `open` and `close` (exclusive).
fn param_shape(lx: &Lexed, open: usize, close: usize) -> (usize, bool) {
    if close == open + 1 {
        return (0, false);
    }
    let (mut paren, mut square, mut brace, mut angle) = (0i32, 0i32, 0i32, 0i32);
    let mut commas = 0usize;
    let mut has_self = false;
    let mut saw_any = false;
    let mut first_segment = true;
    let mut j = open + 1;
    while j < close {
        match lx.kind(j) {
            Some(TokKind::Punct('(')) => paren += 1,
            Some(TokKind::Punct(')')) => paren -= 1,
            Some(TokKind::Punct('[')) => square += 1,
            Some(TokKind::Punct(']')) => square -= 1,
            Some(TokKind::Punct('{')) => brace += 1,
            Some(TokKind::Punct('}')) => brace -= 1,
            Some(TokKind::Punct('<')) => angle += 1,
            Some(TokKind::Punct('>')) => {
                // `->` in fn-pointer types is an arrow, not a close-angle.
                if !lx.is_punct(j - 1, '-') {
                    angle -= 1;
                }
            }
            Some(TokKind::Punct(',')) => {
                if paren == 0 && square == 0 && brace == 0 && angle == 0 {
                    commas += 1;
                    first_segment = false;
                    // Trailing comma: peek whether anything follows.
                    if j + 1 >= close {
                        commas -= 1;
                    }
                }
            }
            Some(TokKind::Ident(s)) => {
                saw_any = true;
                if first_segment && s == "self" && angle == 0 {
                    has_self = true;
                }
            }
            _ => saw_any = true,
        }
        j += 1;
    }
    let params = if saw_any { commas + 1 } else { 0 };
    (params.saturating_sub(usize::from(has_self)), has_self)
}

/// Whether the `fn` at `at` is `pub` with unrestricted visibility,
/// scanning back over `const` / `async` / `unsafe` / `extern "C"`.
fn is_pub_at(lx: &Lexed, at: usize) -> bool {
    let mut k = at;
    while k > 0 {
        match lx.kind(k - 1) {
            Some(TokKind::Ident(s)) => match s.as_str() {
                "pub" => return true,
                "const" | "async" | "unsafe" | "extern" => k -= 1,
                _ => return false,
            },
            // The ABI string of `extern "C" fn` sits between the
            // modifier and the `fn` keyword.
            Some(TokKind::Str(_)) => k -= 1,
            // Anything else — including the `)` closing a `pub(crate)` /
            // `pub(super)` visibility list — is not unrestricted-pub.
            _ => return false,
        }
    }
    false
}

/// Skip a matched `<...>` group starting at the `<` at `at`; returns the
/// index just past the closing `>`. Handles `->` arrows inside bounds.
fn skip_angles(lx: &Lexed, at: usize, to: usize) -> usize {
    let mut depth = 0i32;
    let mut j = at;
    while j < to {
        if lx.is_punct(j, '<') {
            depth += 1;
        } else if lx.is_punct(j, '>') && !lx.is_punct(j - 1, '-') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    to
}

/// `matching` bounded by `to`.
fn matching_in(lx: &Lexed, at: usize, to: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for j in at..to {
        if lx.is_punct(j, open) {
            depth += 1;
        } else if lx.is_punct(j, close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Scan a body token range for calls, refs, taint sources and panic
/// sites.
// One pass, one match arm per atom class; splitting it would scatter the
// token-window logic.
#[allow(clippy::too_many_lines)]
fn scan_body(lx: &Lexed, from: usize, to: usize, owner: Option<&str>, item: &mut Item) {
    let toks = &lx.toks;
    for i in from..to {
        let line = toks[i].line;
        match &toks[i].kind {
            TokKind::Ident(name) => {
                // Macro panic sites: `name!`.
                if lx.is_punct(i + 1, '!')
                    && matches!(
                        name.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    )
                {
                    item.panics.push(PanicSite {
                        what: format!("{name}!"),
                        line,
                        is_index: false,
                    });
                    continue;
                }
                // Determinism-taint sources.
                if let Some(kind) = source_kind(lx, i, name) {
                    item.sources.push(SourceAtom {
                        kind,
                        what: name.clone(),
                        line,
                    });
                }
                if lx.is_punct(i + 1, '(') {
                    if CALL_KEYWORDS.contains(&name.as_str()) {
                        continue;
                    }
                    let method = i >= 1 && lx.is_punct(i - 1, '.');
                    // `.unwrap()` / `.expect(...)` panic sites.
                    if method && (name == "unwrap" || name == "expect") {
                        item.panics.push(PanicSite {
                            what: format!(".{name}()"),
                            line,
                            is_index: false,
                        });
                    }
                    let qualifier = if !method && i >= 2 && lx.is_path_sep(i - 2) && i >= 3 {
                        match lx.kind(i - 3) {
                            Some(TokKind::Ident(q)) if q == "Self" => owner.map(str::to_string),
                            Some(TokKind::Ident(q)) => Some(q.clone()),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    let Some(close) = matching_in(lx, i + 1, to, '(', ')') else {
                        continue;
                    };
                    let (arity, _) = param_shape(lx, i + 1, close);
                    let first_str = toks[i + 2..close].iter().find_map(|t| match &t.kind {
                        TokKind::Str(s) => Some(s.clone()),
                        _ => None,
                    });
                    item.calls.push(CallSite {
                        name: name.clone(),
                        qualifier,
                        method,
                        arity,
                        line,
                        first_str,
                    });
                } else {
                    // Bare reference in argument position: `(tick)` or
                    // `, tick,` / `, tick)`.
                    let prev_ok = i >= 1 && (lx.is_punct(i - 1, '(') || lx.is_punct(i - 1, ','));
                    let next_ok = lx.is_punct(i + 1, ')') || lx.is_punct(i + 1, ',');
                    if prev_ok
                        && next_ok
                        && !REF_EXCLUDED.contains(&name.as_str())
                        && !CALL_KEYWORDS.contains(&name.as_str())
                        && name.chars().next().is_some_and(char::is_lowercase)
                    {
                        item.refs.push(RefSite {
                            name: name.clone(),
                            line,
                        });
                    }
                }
            }
            TokKind::Punct('[') => {
                // Indexing: `expr[...]` — previous token ends an
                // expression. Attribute literals (`#[...]`) and array
                // literals (`= [...]`, `&[...]`) don't index.
                let prev_is_expr_end = i >= 1
                    && (matches!(lx.kind(i - 1), Some(TokKind::Ident(_)))
                        || lx.is_punct(i - 1, ')')
                        || lx.is_punct(i - 1, ']'));
                if !prev_is_expr_end {
                    continue;
                }
                let Some(close) = matching_in(lx, i, to, '[', ']') else {
                    continue;
                };
                // A single integer-literal index on a fixed pattern is
                // still a panic site, but a lone `Num` is by far the most
                // common provably-bounded shape; everything else counts.
                let inner = &toks[i + 1..close];
                let literal_only = inner.len() == 1 && inner[0].kind == TokKind::Num;
                if !literal_only {
                    item.panics.push(PanicSite {
                        what: "[..] indexing".to_string(),
                        line,
                        is_index: true,
                    });
                }
            }
            _ => {}
        }
    }
}

/// Classify an identifier as a determinism-taint source, mirroring (and
/// extending) the per-site `wall-clock` / `ad-hoc-rng` lint conditions.
fn source_kind(lx: &Lexed, i: usize, name: &str) -> Option<SourceKind> {
    match name {
        "Instant" | "SystemTime" => {
            let called_now = lx.is_path_sep(i + 1) && lx.is_ident(i + 3, "now");
            let time_path = i >= 3 && lx.is_ident(i - 3, "time") && lx.is_path_sep(i - 2);
            (called_now || time_path).then_some(SourceKind::WallClock)
        }
        "thread_rng" | "from_entropy" | "getrandom" => Some(SourceKind::HostRng),
        "random" => (i >= 3 && lx.is_ident(i - 3, "rand") && lx.is_path_sep(i - 2))
            .then_some(SourceKind::HostRng),
        "RandomState" => Some(SourceKind::RandomState),
        "ThreadId" => Some(SourceKind::ThreadId),
        "current" => (i >= 3 && lx.is_ident(i - 3, "thread") && lx.is_path_sep(i - 2))
            .then_some(SourceKind::ThreadId),
        "var" | "var_os" => (i >= 3 && lx.is_ident(i - 3, "env") && lx.is_path_sep(i - 2))
            .then_some(SourceKind::EnvRead),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<Item> {
        let lexed = lex(src);
        parse_items("crates/x/src/lib.rs", "x", &lexed, &[])
    }

    #[test]
    fn free_fns_and_methods_are_items() {
        let src = r"
            pub fn alpha(a: u32, b: &str) -> u32 { beta(a) }
            fn beta(x: u32) -> u32 { x }
            struct Foo;
            impl Foo {
                pub fn make(n: usize) -> Foo { Foo }
                fn helper(&self, v: Vec<Vec<u8>>) { self.other(1, 2) }
            }
            impl fmt::Display for Foo {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
            }
        ";
        let it = items(src);
        let names: Vec<(String, Option<String>, usize, bool, bool)> = it
            .iter()
            .map(|i| {
                (
                    i.name.clone(),
                    i.owner.clone(),
                    i.arity,
                    i.has_self,
                    i.is_pub,
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("alpha".into(), None, 2, false, true),
                ("beta".into(), None, 1, false, false),
                ("make".into(), Some("Foo".into()), 1, false, true),
                ("helper".into(), Some("Foo".into()), 1, true, false),
                ("fmt".into(), Some("Foo".into()), 1, true, false),
            ]
        );
        // alpha's body calls beta with one argument.
        let alpha = &it[0];
        assert!(alpha
            .calls
            .iter()
            .any(|c| c.name == "beta" && c.arity == 1 && !c.method));
        // helper's body calls .other(1, 2).
        let helper = &it[3];
        assert!(helper
            .calls
            .iter()
            .any(|c| c.name == "other" && c.method && c.arity == 2));
    }

    #[test]
    fn qualified_and_self_calls_carry_the_owner() {
        let src = r"
            impl Wheel {
                pub fn new() -> Wheel { Self::with_slots(4096) }
                fn with_slots(n: usize) -> Wheel { Wheel }
            }
            fn free() { Wheel::new(); pool::reset(); }
        ";
        let it = items(src);
        let new = it.iter().find(|i| i.name == "new").unwrap();
        assert!(new
            .calls
            .iter()
            .any(|c| c.name == "with_slots" && c.qualifier.as_deref() == Some("Wheel")));
        let free = it.iter().find(|i| i.name == "free").unwrap();
        assert!(free
            .calls
            .iter()
            .any(|c| c.name == "new" && c.qualifier.as_deref() == Some("Wheel")));
        assert!(free
            .calls
            .iter()
            .any(|c| c.name == "reset" && c.qualifier.as_deref() == Some("pool")));
    }

    #[test]
    fn closures_attribute_to_the_enclosing_fn_and_fn_refs_are_refs() {
        let src = r"
            pub fn arm(sim: &mut Sim) {
                sim.schedule_at(t, move |s| { helper(s); });
                sim.schedule_fn_at(t, tick);
            }
            fn helper(s: &mut Sim) {}
            fn tick(s: &mut Sim) {}
        ";
        let it = items(src);
        let arm = &it[0];
        assert!(arm.calls.iter().any(|c| c.name == "helper"));
        assert!(arm.refs.iter().any(|r| r.name == "tick"));
    }

    #[test]
    fn taint_sources_and_panic_sites_are_collected() {
        let src = r#"
            fn bad(map: &BTreeMap<u32, u32>, v: &[u8]) -> u32 {
                let t = std::time::Instant::now();
                let r = rand::random::<u64>();
                let h = RandomState::new();
                let e = std::env::var("SEED").unwrap();
                if v[compute()] > 3 { panic!("boom") }
                map.get(&1).expect("present");
                v[0];
                unreachable!()
            }
        "#;
        let it = items(src);
        let bad = &it[0];
        let kinds: Vec<SourceKind> = bad.sources.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SourceKind::WallClock));
        assert!(kinds.contains(&SourceKind::HostRng));
        assert!(kinds.contains(&SourceKind::RandomState));
        assert!(kinds.contains(&SourceKind::EnvRead));
        let whats: Vec<&str> = bad.panics.iter().map(|p| p.what.as_str()).collect();
        assert!(whats.contains(&".unwrap()"));
        assert!(whats.contains(&".expect()"));
        assert!(whats.contains(&"panic!"));
        assert!(whats.contains(&"unreachable!"));
        // `v[compute()]` is an index site; `v[0]` is literal-only.
        assert_eq!(bad.panics.iter().filter(|p| p.is_index).count(), 1);
    }

    #[test]
    fn test_region_items_are_flagged() {
        let src = "fn live() {}\nfn probed() {}\n";
        let lexed = lex(src);
        let it = parse_items("crates/x/src/lib.rs", "x", &lexed, &[(2, 2)]);
        assert!(!it[0].is_test);
        assert!(it[1].is_test);
    }

    #[test]
    fn raw_identifier_fn_names_resolve_bare() {
        let it = items("fn r#type() {} fn caller() { r#type(); }");
        assert_eq!(it[0].name, "type");
        assert!(it[1].calls.iter().any(|c| c.name == "type"));
    }

    #[test]
    fn generics_with_fn_bounds_do_not_derail_the_signature() {
        let src = "pub fn schedule<F: FnOnce(&mut Sim) -> u32 + 'static>(at: SimTime, f: F) {}";
        let it = items(src);
        assert_eq!(it.len(), 1);
        assert_eq!(it[0].name, "schedule");
        assert_eq!(it[0].arity, 2);
        assert!(it[0].is_pub);
    }
}
