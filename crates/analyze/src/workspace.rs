//! Workspace discovery: find the root, enumerate source files and
//! manifests, and classify each file for rule scoping.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One Rust source file under a crate's `src/` (or, with
/// [`discover_with`], `tests/`) tree.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Workspace crate directory name (`sim`, `core`, ... , or `clic` for
    /// the root facade crate).
    pub crate_name: String,
    /// Whether this file is the crate's `src/lib.rs`.
    pub is_lib_root: bool,
    /// Whether this file is an integration-test source (a `tests/` tree):
    /// the relaxed policy row applies (see [`crate::rules::policy_test`]).
    pub is_test_source: bool,
    /// File contents.
    pub text: String,
}

/// One `Cargo.toml`.
#[derive(Debug)]
pub struct Manifest {
    /// Path relative to the workspace root.
    pub rel: String,
    /// File contents.
    pub text: String,
}

/// Everything the analyzer scans.
#[derive(Debug)]
pub struct Workspace {
    /// The workspace root directory.
    pub root: PathBuf,
    /// Library source files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Workspace manifests, sorted by path.
    pub manifests: Vec<Manifest>,
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Enumerate the workspace's library sources (`src/` trees only — tests,
/// benches, examples and fixtures are out of scope by construction) and
/// every `Cargo.toml`.
pub fn discover(root: &Path) -> io::Result<Workspace> {
    discover_with(root, false)
}

/// [`discover`], optionally including integration-test sources (`tests/`
/// trees). The analyzer's own `tests/fixtures/` directory is always
/// excluded: its files violate rules on purpose.
pub fn discover_with(root: &Path, include_tests: bool) -> io::Result<Workspace> {
    let mut files = Vec::new();
    let mut manifests = Vec::new();

    push_manifest(root, "Cargo.toml", &mut manifests)?;
    collect_src(root, Path::new("src"), "clic", &mut files)?;
    if include_tests {
        collect_tests(root, Path::new("tests"), "clic", &mut files)?;
    }

    // Tolerate a workspace without a `crates/` tree (the root package is
    // still scanned) so the analyzer runs on any layout.
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(iter) => iter
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(_) => Vec::new(),
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let rel_manifest = format!("crates/{name}/Cargo.toml");
        push_manifest(root, &rel_manifest, &mut manifests)?;
        collect_src(
            root,
            &Path::new("crates").join(&name).join("src"),
            &name,
            &mut files,
        )?;
        if include_tests {
            collect_tests(
                root,
                &Path::new("crates").join(&name).join("tests"),
                &name,
                &mut files,
            )?;
        }
    }

    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    manifests.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        manifests,
    })
}

fn push_manifest(root: &Path, rel: &str, out: &mut Vec<Manifest>) -> io::Result<()> {
    let path = root.join(rel);
    if path.is_file() {
        out.push(Manifest {
            rel: rel.to_string(),
            text: fs::read_to_string(path)?,
        });
    }
    Ok(())
}

/// Recursively collect `.rs` files under `root/dir` (a `src/` tree).
fn collect_src(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let abs = root.join(dir);
    if !abs.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&abs)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            collect_src(root, &dir.join(name), crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = dir
                .join(name)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                is_lib_root: rel.ends_with("src/lib.rs"),
                rel,
                crate_name: crate_name.to_string(),
                is_test_source: false,
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Recursively collect `.rs` files under `root/dir` (a `tests/` tree),
/// skipping `fixtures/` subtrees (deliberately-violating lint inputs).
fn collect_tests(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let abs = root.join(dir);
    if !abs.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&abs)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if name == "fixtures" || name == "golden" {
                continue;
            }
            collect_tests(root, &dir.join(name), crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = dir
                .join(name)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                is_lib_root: false,
                rel,
                crate_name: crate_name.to_string(),
                is_test_source: true,
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/analyze -> workspace root.
        find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
    }

    #[test]
    fn discovers_this_workspace() {
        let ws = discover(&repo_root()).unwrap();
        assert!(ws.files.iter().any(|f| f.rel == "crates/sim/src/engine.rs"));
        assert!(ws
            .files
            .iter()
            .any(|f| f.rel == "src/lib.rs" && f.crate_name == "clic"));
        assert!(ws
            .manifests
            .iter()
            .any(|m| m.rel == "crates/analyze/Cargo.toml"));
        // Out of scope: tests, benches, examples.
        assert!(!ws.files.iter().any(|f| f.rel.contains("/tests/")));
        assert!(!ws.files.iter().any(|f| f.rel.starts_with("examples/")));
    }

    #[test]
    fn test_sources_discovered_on_request() {
        let ws = discover_with(&repo_root(), true).unwrap();
        assert!(ws.files.iter().any(|f| f.is_test_source
            && f.rel.starts_with("crates/")
            && f.rel.contains("/tests/")));
        // Fixture files never enter the scan: they violate rules on
        // purpose. Golden JSON directories hold no Rust but are skipped
        // too.
        assert!(!ws.files.iter().any(|f| f.rel.contains("/fixtures/")));
        // Library sources keep their flag off.
        assert!(ws
            .files
            .iter()
            .all(|f| !(f.rel.contains("/src/") && f.is_test_source)));
    }

    #[test]
    fn lib_roots_are_marked() {
        let ws = discover(&repo_root()).unwrap();
        let lib = ws
            .files
            .iter()
            .find(|f| f.rel == "crates/sim/src/lib.rs")
            .unwrap();
        assert!(lib.is_lib_root);
        let not_lib = ws
            .files
            .iter()
            .find(|f| f.rel == "crates/sim/src/engine.rs")
            .unwrap();
        assert!(!not_lib.is_lib_root);
    }
}
