//! Command-line entry point for `clic-analyze`.
//!
//! ```text
//! clic-analyze [--root <dir>] [--json] [--list-rules] [--catalog]
//!              [--graph <out.dot>] [--include-tests]
//! ```
//!
//! Exit status: 0 when the workspace is clean, 1 when violations are
//! found, 2 on usage or I/O errors.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use clic_analyze::catalog;
use clic_analyze::diag::{render_human, render_json};
use clic_analyze::graph;
use clic_analyze::rules::{analyze_workspace, RULES};
use clic_analyze::workspace::{discover_with, find_root};

/// Write to stdout, swallowing broken-pipe errors so `clic-analyze
/// --list-rules | head` exits quietly instead of panicking.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

const USAGE: &str = "usage: clic-analyze [--root <dir>] [--json] [--list-rules] [--catalog]
                    [--graph <out.dot>] [--include-tests]

  --root <dir>      workspace to analyze (default: walk up from cwd)
  --json            machine-readable output
  --list-rules      print the rule set and exit
  --catalog         print the parsed observability catalog and exit
  --graph <out>     also write the workspace call graph as DOT (layered
                    by crate) to <out>
  --include-tests   scan integration-test sources too, under the relaxed
                    test policy row
";

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut show_catalog = false;
    let mut include_tests = false;
    let mut graph_out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--catalog" => show_catalog = true,
            "--include-tests" => include_tests = true,
            "--graph" => {
                let Some(out) = args.next() else {
                    eprintln!("clic-analyze: --graph needs an output path\n{USAGE}");
                    return ExitCode::from(2);
                };
                graph_out = Some(PathBuf::from(out));
            }
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("clic-analyze: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                emit(USAGE);
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("clic-analyze: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for (name, what) in RULES {
            emit(&format!("{name:<22} {what}\n"));
        }
        return ExitCode::SUCCESS;
    }

    let root = if let Some(r) = root {
        r
    } else {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let Some(r) = find_root(&cwd) else {
            eprintln!("clic-analyze: no [workspace] Cargo.toml above the current dir");
            return ExitCode::from(2);
        };
        r
    };

    if show_catalog {
        return print_catalog(&root);
    }

    let ws = match discover_with(&root, include_tests) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("clic-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(out_path) = &graph_out {
        let dot = graph::render_dot(&graph::build(&ws));
        if let Err(e) = std::fs::write(out_path, dot) {
            eprintln!("clic-analyze: {}: {e}", out_path.display());
            return ExitCode::from(2);
        }
    }
    let report = analyze_workspace(&ws);
    let out = if json {
        render_json(&report.diags, report.files_scanned)
    } else {
        render_human(&report.diags, report.files_scanned)
    };
    emit(&out);
    if report.diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_catalog(root: &std::path::Path) -> ExitCode {
    let path = root.join("crates/sim/src/catalog.rs");
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("clic-analyze: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match catalog::parse(&src) {
        Ok(c) => {
            let mut out = format!("# metrics ({})\n", c.metrics.len());
            for e in &c.metrics {
                let _ = writeln!(
                    out,
                    "{:<40} {}",
                    e.name,
                    e.kind.map_or("?", catalog::Kind::name)
                );
            }
            let _ = writeln!(out, "# stages ({})", c.stages.len());
            for e in &c.stages {
                let _ = writeln!(out, "{}", e.name);
            }
            emit(&out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clic-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
