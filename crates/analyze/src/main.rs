//! Command-line entry point for `clic-analyze`.
//!
//! ```text
//! clic-analyze [--root <dir>] [--json] [--list-rules] [--catalog]
//! ```
//!
//! Exit status: 0 when the workspace is clean, 1 when violations are
//! found, 2 on usage or I/O errors.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use clic_analyze::catalog;
use clic_analyze::diag::{render_human, render_json};
use clic_analyze::rules::{analyze, RULES};
use clic_analyze::workspace::find_root;

/// Write to stdout, swallowing broken-pipe errors so `clic-analyze
/// --list-rules | head` exits quietly instead of panicking.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

const USAGE: &str = "usage: clic-analyze [--root <dir>] [--json] [--list-rules] [--catalog]

  --root <dir>   workspace to analyze (default: walk up from cwd)
  --json         machine-readable output
  --list-rules   print the rule set and exit
  --catalog      print the parsed observability catalog and exit
";

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut show_catalog = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--catalog" => show_catalog = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("clic-analyze: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                emit(USAGE);
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("clic-analyze: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for (name, what) in RULES {
            emit(&format!("{name:<22} {what}\n"));
        }
        return ExitCode::SUCCESS;
    }

    let root = if let Some(r) = root {
        r
    } else {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let Some(r) = find_root(&cwd) else {
            eprintln!("clic-analyze: no [workspace] Cargo.toml above the current dir");
            return ExitCode::from(2);
        };
        r
    };

    if show_catalog {
        return print_catalog(&root);
    }

    match analyze(&root) {
        Ok(report) => {
            let out = if json {
                render_json(&report.diags, report.files_scanned)
            } else {
                render_human(&report.diags, report.files_scanned)
            };
            emit(&out);
            if report.diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("clic-analyze: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_catalog(root: &std::path::Path) -> ExitCode {
    let path = root.join("crates/sim/src/catalog.rs");
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("clic-analyze: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match catalog::parse(&src) {
        Ok(c) => {
            let mut out = format!("# metrics ({})\n", c.metrics.len());
            for e in &c.metrics {
                let _ = writeln!(
                    out,
                    "{:<40} {}",
                    e.name,
                    e.kind.map_or("?", catalog::Kind::name)
                );
            }
            let _ = writeln!(out, "# stages ({})", c.stages.len());
            for e in &c.stages {
                let _ = writeln!(out, "{}", e.name);
            }
            emit(&out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clic-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
