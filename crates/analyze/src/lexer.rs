//! A minimal hand-rolled Rust lexer.
//!
//! Produces just enough token structure for the lint rules: identifiers,
//! string literals (with their decoded-enough value), punctuation, and the
//! line each token starts on. Comments are not discarded — line comments
//! are collected separately so `// lint:allow(...)` annotations can be
//! parsed — and doc comments, block comments, char literals and raw/byte
//! strings are all handled so that a `HashMap` mentioned in prose or a
//! `"thread_rng"` inside a string can never trigger a lint.
//!
//! The lexer is intentionally permissive: on malformed input it produces
//! best-effort tokens rather than erroring, since rustc itself is the
//! authority on syntax (the workspace must already compile before the
//! analyzer runs in CI).

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (regular, raw or byte); the payload is the raw
    /// source text between the quotes, escapes untouched.
    Str(String),
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// A single punctuation character.
    Punct(char),
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind and payload.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

/// A `//` comment (including `///` and `//!` doc comments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Comment text after the leading slashes.
    pub text: String,
}

/// Lexer output: the token stream and every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

impl Lexed {
    /// Kind of the token at `i`, if in range.
    pub fn kind(&self, i: usize) -> Option<&TokKind> {
        self.toks.get(i).map(|t| &t.kind)
    }

    /// True when the token at `i` is the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        matches!(self.kind(i), Some(TokKind::Ident(s)) if s == name)
    }

    /// True when the token at `i` is the punctuation `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.kind(i), Some(TokKind::Punct(p)) if *p == c)
    }

    /// True when tokens at `i`, `i + 1` form a `::` path separator.
    pub fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails; unknown bytes become punctuation tokens.
// One linear pass; each match arm is one token class. Splitting it would
// scatter the scanner state.
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                // Doc comments (`///`, `//!`) are documentation, not
                // annotation carriers — only plain `//` comments are
                // scanned for allow annotations.
                let is_doc = matches!(chars.get(start), Some('/' | '!'));
                if !is_doc {
                    out.comments.push(LineComment {
                        line,
                        text: chars[start..j].iter().collect(),
                    });
                }
                i = j;
            }
            '/' if next == Some('*') => {
                // Nested block comment.
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    match (chars[j], chars.get(j + 1).copied()) {
                        ('/', Some('*')) => {
                            depth += 1;
                            j += 2;
                        }
                        ('*', Some('/')) => {
                            depth -= 1;
                            j += 2;
                        }
                        ('\n', _) => {
                            line += 1;
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
            }
            '"' => {
                let (value, end, newlines) = scan_quoted(&chars, i + 1);
                out.toks.push(Tok {
                    kind: TokKind::Str(value),
                    line,
                });
                line += newlines;
                i = end;
            }
            'r' | 'b' if starts_string_prefix(&chars, i) => {
                let (tok, end, newlines) = scan_prefixed_string(&chars, i, line);
                out.toks.push(tok);
                line += newlines;
                i = end;
            }
            // Raw identifier `r#type`: one Ident token whose payload is the
            // bare name, so `r#fn` and `fn` resolve to the same call-graph
            // node and the `#` can never be mistaken for an attribute.
            'r' if next == Some('#') && chars.get(i + 2).copied().is_some_and(is_ident_start) => {
                let start = i + 2;
                let mut j = start + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident(chars[start..j].iter().collect()),
                    line,
                });
                i = j;
            }
            '\'' => {
                // Char literal vs lifetime.
                let is_char = matches!(
                    (chars.get(i + 1), chars.get(i + 2)),
                    (Some('\\'), _) | (Some(_), Some('\''))
                );
                if is_char {
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'\\') {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        line,
                    });
                    i = j + 1;
                } else {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        line,
                    });
                    i = j;
                }
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident(chars[i..j].iter().collect()),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < chars.len() {
                    let d = chars[j];
                    // A signed exponent (`1e-5`, `2.5E+10`) continues the
                    // literal: without this the `-` would become a spurious
                    // binary operator between two number tokens.
                    let signed_exp = (d == '+' || d == '-')
                        && matches!(chars[j - 1], 'e' | 'E')
                        && chars[i..j].iter().all(|&c| c != 'x' && c != 'b')
                        && chars.get(j + 1).is_some_and(char::is_ascii_digit);
                    if is_ident_continue(d)
                        || signed_exp
                        || (d == '.' && chars.get(j + 1).is_some_and(char::is_ascii_digit))
                    {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    line,
                });
                i = j;
            }
            c => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scan a regular quoted string starting after the opening quote. Returns
/// `(value, index past closing quote, newline count)`.
fn scan_quoted(chars: &[char], start: usize) -> (String, usize, u32) {
    let mut j = start;
    let mut newlines = 0u32;
    while j < chars.len() {
        match chars[j] {
            // An escaped newline (string line-continuation) still ends a
            // source line; losing it would shift every later token's line.
            '\\' => {
                if chars.get(j + 1) == Some(&'\n') {
                    newlines += 1;
                }
                j += 2;
            }
            '"' => break,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    let value = chars[start..j.min(chars.len())].iter().collect();
    (value, (j + 1).min(chars.len() + 1), newlines)
}

/// Whether the `r` / `b` at `i` starts a raw/byte string or byte char
/// (`r"`, `r#"`, `b"`, `br"`, `br#"`, `b'`).
fn starts_string_prefix(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return true;
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    chars.get(j) == Some(&'"')
}

/// Scan a raw/byte string (or byte char) whose prefix starts at `i`.
fn scan_prefixed_string(chars: &[char], i: usize, line: u32) -> (Tok, usize, u32) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            // Byte char literal b'x' / b'\n'.
            let mut k = j + 1;
            if chars.get(k) == Some(&'\\') {
                k += 2;
            } else {
                k += 1;
            }
            while k < chars.len() && chars[k] != '\'' {
                k += 1;
            }
            return (
                Tok {
                    kind: TokKind::Char,
                    line,
                },
                k + 1,
                0,
            );
        }
    }
    let raw = chars.get(j) == Some(&'r');
    let mut hashes = 0usize;
    if raw {
        j += 1;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    // chars[j] is the opening quote.
    let start = j + 1;
    let mut k = start;
    let mut newlines = 0u32;
    while k < chars.len() {
        match chars[k] {
            '\\' if !raw => {
                if chars.get(k + 1) == Some(&'\n') {
                    newlines += 1;
                }
                k += 2;
            }
            '\n' => {
                newlines += 1;
                k += 1;
            }
            '"' => {
                if !raw
                    || chars[k + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&c| c == '#')
                        .count()
                        == hashes
                {
                    break;
                }
                k += 1;
            }
            _ => k += 1,
        }
    }
    let value: String = chars[start..k.min(chars.len())].iter().collect();
    (
        Tok {
            kind: TokKind::Str(value),
            line,
        },
        (k + 1 + hashes).min(chars.len() + 1),
        newlines,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_hide_identifiers() {
        let src = "// HashMap here\n/* thread_rng\n * Instant */\n/// HashMap doc\nfn ok() {}";
        assert_eq!(idents(src), vec!["fn", "ok"]);
    }

    #[test]
    fn strings_hide_identifiers() {
        let src = r##"let x = "HashMap"; let y = r#"thread_rng"#; let z = b"Instant";"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn string_values_are_captured() {
        let lexed = lex(r#"m.counter_inc("clic.retransmits");"#);
        let strs: Vec<&str> = lexed
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["clic.retransmits"]);
    }

    #[test]
    fn lines_are_tracked_across_constructs() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e";
        let lexed = lex(src);
        let by_name: Vec<(String, u32)> = lexed
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 4),
                ("e".to_string(), 5)
            ]
        );
    }

    #[test]
    fn escaped_newline_in_string_still_counts_the_line() {
        // `"... \` continuation: the backslash escapes the newline, but the
        // source line still ends there.
        let src = "let s = \"one \\\ntwo\";\nafter";
        let lexed = lex(src);
        let after = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("after".to_string()))
            .expect("after token");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "let c = 'x'; let n = '\\n'; fn f<'a>(v: &'a str) {}";
        let lexed = lex(src);
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn line_comments_are_collected() {
        let src = "fn a() {} // lint:allow(no-unwrap, reason=\"x\")\n// plain";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("lint:allow"));
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let src = "let x = 1.0; y.unwrap(); let h = 0x1f; let e = 1e-5;";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let src = "fn r#type(r#fn: u32) { r#type(r#fn); }";
        assert_eq!(idents(src), vec!["fn", "type", "fn", "u32", "type", "fn"]);
        // `r#"..."#` raw strings must still be strings, not raw idents.
        let lexed = lex(r##"let s = r#"type"#;"##);
        assert!(lexed
            .toks
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Str(s) if s == "type")));
    }

    #[test]
    fn float_exponents_are_one_token() {
        for src in ["1e-5", "2.5E+10", "1e6", "3.25e-4f64"] {
            let lexed = lex(src);
            assert_eq!(lexed.toks.len(), 1, "{src}: {:?}", lexed.toks);
            assert_eq!(lexed.toks[0].kind, TokKind::Num, "{src}");
        }
        // Hex literals keep `-` as a real operator (`0x1e - 5` subtracts).
        let lexed = lex("0x1e-5");
        assert_eq!(lexed.toks.len(), 3, "{:?}", lexed.toks);
        // And subtraction after a plain decimal is untouched.
        let lexed = lex("let d = 7 - 5;");
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Punct('-')));
    }

    #[test]
    fn nested_generic_close_stays_two_puncts() {
        // `>>` at the end of `Vec<Vec<u8>>` must lex as two `>` tokens so
        // bracket matching in the item parser can pair them with each `<`.
        let lexed = lex("let v: Vec<Vec<u8>> = Vec::new();");
        let gt = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct('>'))
            .count();
        let lt = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct('<'))
            .count();
        assert_eq!((lt, gt), (2, 2));
    }
}
