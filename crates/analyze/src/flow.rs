//! Call-graph rule families: determinism taint, panic reachability, and
//! catalog liveness.
//!
//! These rules answer questions a per-site lexical lint cannot: not "does
//! this line read the wall clock" but "can a simulation entry point
//! *reach* code that does". They run over the [`crate::graph`] call graph
//! and report each finding with the full root→sink call chain, so a
//! violation is actionable without re-running the analysis.
//!
//! * `determinism-taint` — a public item of a simulation crate reaches a
//!   taint source (wall clock, host RNG, `RandomState`, thread identity,
//!   environment read) in a crate the per-site determinism rules do not
//!   cover. Inside `SIM_CRATES` the sources are already per-site
//!   violations; this rule closes the cross-crate gap.
//! * `panic-reach` — a public API of the `no-unwrap` crates
//!   (core/ethernet/sim) transitively reaches an `unwrap`/`expect`/
//!   `panic!`/`unreachable!` site in a crate the per-site `no-unwrap`
//!   rule does not cover. Slice-indexing sites are an opt-in sink class
//!   ([`FlowPolicy::check_index`]), off by default: rustc-checked index
//!   discipline plus the golden tests make blanket indexing reports more
//!   noise than signal, but the machinery is exercised in tests and can
//!   be turned on for an audit pass.
//! * `unreachable-name` — a catalog name whose recording sites all sit in
//!   code unreachable from the job entry points (public items of
//!   `clic-cluster` / `clic-bench`, plus any `fn main`). Distinct from
//!   `dead-name`: the recorder *exists* but nothing can ever run it.

use crate::catalog::{strip_node_prefix, Catalog, Kind};
use crate::graph::{path_to, reach, Graph};
use crate::rules::{
    policy, METRIC_CALLS, METRIC_ID_CALLS, NO_UNWRAP_CRATES, OBS_INFRA_FILES, SIM_CRATES,
    STAGE_CALLS, STAGE_ID_CALL,
};
use std::collections::{BTreeMap, BTreeSet};

/// Options for the graph rule pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct FlowPolicy {
    /// Count slice/array indexing sites as `panic-reach` sinks. Off in the
    /// workspace gate (see module docs); exercised by tests.
    pub check_index: bool,
}

/// One graph-rule finding, not yet filtered against `lint:allow`
/// annotations (that happens centrally in [`crate::rules`], so an
/// annotation in the anchoring file can suppress it).
#[derive(Debug)]
pub struct Finding {
    /// Rule identifier.
    pub rule: &'static str,
    /// Workspace-relative file the finding anchors to.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
    /// Root→sink call chain.
    pub path: Vec<String>,
}

/// Crates whose panic sites are never `panic-reach` sinks: the shims
/// deliberately mirror the panic behaviour of the upstream crates they
/// stand in for (`Bytes::slice` panics out of range exactly like the real
/// `bytes`), and the analyzer is a host tool outside the simulation.
const PANIC_EXEMPT_CRATES: &[&str] = &["shim-bytes", "shim-criterion", "shim-proptest", "analyze"];

/// Crates whose public items are the job entry points for the
/// `unreachable-name` liveness pass.
const ENTRY_CRATES: &[&str] = &["bench", "cluster"];

/// Run every graph rule; findings are sorted by (file, line, rule).
pub fn run(g: &Graph, catalog: &Catalog, pol: &FlowPolicy) -> Vec<Finding> {
    let mut out = Vec::new();
    determinism_taint(g, &mut out);
    panic_reach(g, *pol, &mut out);
    unreachable_names(g, catalog, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Non-test items that are unrestricted-`pub` in one of `crates`.
fn pub_roots(g: &Graph, crates: &[&str]) -> Vec<usize> {
    g.items
        .iter()
        .enumerate()
        .filter(|(_, it)| !it.is_test && it.is_pub && crates.contains(&it.crate_name.as_str()))
        .map(|(id, _)| id)
        .collect()
}

/// `determinism-taint`: simulation public API → taint source outside the
/// per-site determinism perimeter.
fn determinism_taint(g: &Graph, out: &mut Vec<Finding>) {
    let roots = pub_roots(g, SIM_CRATES);
    let parent = reach(g, &roots);
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for (id, it) in g.items.iter().enumerate() {
        if it.is_test || parent[id].is_none() || policy(&it.crate_name).determinism {
            continue;
        }
        for s in &it.sources {
            if !seen.insert((it.file.clone(), s.line, s.what.clone())) {
                continue;
            }
            let path = path_to(g, &parent, id);
            out.push(Finding {
                rule: "determinism-taint",
                file: it.file.clone(),
                line: s.line,
                message: format!(
                    "`{}` ({}) is reachable from simulation API `{}`",
                    s.what,
                    s.kind.label(),
                    path.first().map_or("?", String::as_str)
                ),
                suggestion: "break the call path or inject the value through Sim/config; \
                             audited escape: lint:allow(determinism-taint, reason=\"...\")"
                    .to_string(),
                path,
            });
        }
    }
}

/// `panic-reach`: core/ethernet/sim public API → panic site outside the
/// per-site `no-unwrap` perimeter.
fn panic_reach(g: &Graph, pol: FlowPolicy, out: &mut Vec<Finding>) {
    let roots = pub_roots(g, NO_UNWRAP_CRATES);
    let parent = reach(g, &roots);
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for (id, it) in g.items.iter().enumerate() {
        if it.is_test
            || parent[id].is_none()
            || policy(&it.crate_name).no_unwrap
            || PANIC_EXEMPT_CRATES.contains(&it.crate_name.as_str())
        {
            continue;
        }
        for p in &it.panics {
            if p.is_index && !pol.check_index {
                continue;
            }
            if !seen.insert((it.file.clone(), p.line, p.what.clone())) {
                continue;
            }
            let path = path_to(g, &parent, id);
            out.push(Finding {
                rule: "panic-reach",
                file: it.file.clone(),
                line: p.line,
                message: format!(
                    "`{}` is reachable from public API `{}`",
                    p.what,
                    path.first().map_or("?", String::as_str)
                ),
                suggestion: "return a typed error along the chain or prove the invariant and \
                             annotate with lint:allow(panic-reach, reason=\"...\")"
                    .to_string(),
                path,
            });
        }
    }
}

/// `unreachable-name`: catalog entries whose recording sites all sit in
/// code no job entry point can reach.
fn unreachable_names(g: &Graph, catalog: &Catalog, out: &mut Vec<Finding>) {
    let mut roots = pub_roots(g, ENTRY_CRATES);
    roots.extend(
        g.items
            .iter()
            .enumerate()
            .filter(|(_, it)| !it.is_test && it.name == "main")
            .map(|(id, _)| id),
    );
    let parent = reach(g, &roots);

    // (name, kind) → recording item ids; stage name → recording item ids.
    let mut metric_rec: BTreeMap<(String, Kind), Vec<usize>> = BTreeMap::new();
    let mut stage_rec: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (id, it) in g.items.iter().enumerate() {
        if it.is_test || OBS_INFRA_FILES.contains(&it.file.as_str()) {
            continue;
        }
        for c in &it.calls {
            let Some(lit) = &c.first_str else { continue };
            let metric_kind = if c.method {
                METRIC_CALLS
                    .iter()
                    .find(|(m, _)| *m == c.name)
                    .map(|&(_, k)| k)
            } else {
                METRIC_ID_CALLS
                    .iter()
                    .find(|(m, _)| *m == c.name)
                    .map(|&(_, k)| k)
            };
            if let Some(kind) = metric_kind {
                let name = strip_node_prefix(lit).to_string();
                metric_rec.entry((name, kind)).or_default().push(id);
            } else if (c.method && STAGE_CALLS.contains(&c.name.as_str()))
                || (!c.method && c.name == STAGE_ID_CALL)
            {
                stage_rec.entry(lit.clone()).or_default().push(id);
            }
        }
    }

    let orphaned = |ids: &[usize]| ids.iter().all(|&id| parent[id].is_none());
    for e in &catalog.metrics {
        let Some(kind) = e.kind else { continue };
        let Some(ids) = metric_rec.get(&(e.name.clone(), kind)) else {
            continue; // never recorded at all: that is `dead-name`'s case
        };
        if orphaned(ids) {
            out.push(orphan_finding(
                g,
                e.line,
                format!(
                    "metric `{}` ({}) is recorded only by code unreachable from job entry points",
                    e.name,
                    kind.name()
                ),
                ids,
            ));
        }
    }
    for e in &catalog.stages {
        let Some(ids) = stage_rec.get(&e.name) else {
            continue;
        };
        if orphaned(ids) {
            out.push(orphan_finding(
                g,
                e.line,
                format!(
                    "stage `{}` is emitted only by code unreachable from job entry points",
                    e.name
                ),
                ids,
            ));
        }
    }
}

/// Build an `unreachable-name` finding anchored at a catalog entry line;
/// the "path" lists the orphaned recording items.
fn orphan_finding(g: &Graph, line: u32, message: String, ids: &[usize]) -> Finding {
    let mut recorders: Vec<String> = ids.iter().map(|&id| g.items[id].qualified()).collect();
    recorders.sort();
    recorders.dedup();
    Finding {
        rule: "unreachable-name",
        file: "crates/sim/src/catalog.rs".to_string(),
        line,
        message,
        suggestion: "wire the recorder into a job/experiment (entry points: pub items of \
                     clic-cluster/clic-bench, fn main) or remove the catalog entry"
            .to_string(),
        path: recorders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::parse as parse_catalog;
    use crate::graph::build;
    use crate::workspace::{Manifest, SourceFile, Workspace};

    fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
        Workspace {
            root: std::path::PathBuf::new(),
            files: files
                .into_iter()
                .map(|(rel, krate, text)| SourceFile {
                    rel: rel.to_string(),
                    crate_name: krate.to_string(),
                    is_lib_root: false,
                    is_test_source: false,
                    text: text.to_string(),
                })
                .collect(),
            manifests: vec![Manifest {
                rel: "Cargo.toml".to_string(),
                text: "[workspace.dependencies]\n".to_string(),
            }],
        }
    }

    #[test]
    fn taint_crosses_the_crate_boundary_with_a_path() {
        let g = build(&ws(vec![
            (
                "crates/sim/src/engine.rs",
                "sim",
                "pub fn arm_timeout(sim: &mut Sim) { host_elapsed_ms(); }\n",
            ),
            (
                "crates/shim-bytes/src/lib.rs",
                "shim-bytes",
                "pub fn host_elapsed_ms() -> u64 { std::time::Instant::now(); 0 }\n",
            ),
        ]));
        let f = run(&g, &Catalog::default(), &FlowPolicy::default());
        let taint: Vec<_> = f.iter().filter(|x| x.rule == "determinism-taint").collect();
        assert_eq!(taint.len(), 1, "{f:?}");
        assert_eq!(taint[0].file, "crates/shim-bytes/src/lib.rs");
        assert_eq!(
            taint[0].path,
            vec!["sim::arm_timeout", "shim-bytes::host_elapsed_ms"]
        );
        assert!(taint[0].message.contains("wall-clock"));
    }

    #[test]
    fn panic_reach_reports_the_chain_and_respects_the_index_gate() {
        let files = vec![
            (
                "crates/core/src/proto.rs",
                "core",
                "pub fn post(k: &Kernel) { k.deliver(1); }\n",
            ),
            (
                "crates/os/src/kernel.rs",
                "os",
                "impl Kernel { pub fn deliver(&self, pid: u32) { \
                 self.slots.get(pid).expect(\"bound\"); self.table[pid as usize]; } }\n",
            ),
        ];
        let g = build(&ws(files));
        let quiet = run(&g, &Catalog::default(), &FlowPolicy::default());
        let hits: Vec<_> = quiet.iter().filter(|x| x.rule == "panic-reach").collect();
        assert_eq!(hits.len(), 1, "{quiet:?}");
        assert!(hits[0].message.contains(".expect()"));
        assert_eq!(hits[0].path[0], "core::post");
        assert_eq!(*hits[0].path.last().unwrap(), "os::Kernel::deliver");

        let loud = run(&g, &Catalog::default(), &FlowPolicy { check_index: true });
        assert_eq!(
            loud.iter().filter(|x| x.rule == "panic-reach").count(),
            2,
            "indexing sink appears under check_index"
        );
    }

    #[test]
    fn unreachable_recorder_is_flagged_reachable_one_is_not() {
        let catalog = parse_catalog(
            "pub const METRICS: &[M] = &[\n\
             M { name: \"clic.live\", kind: C, help: \"\" },\n\
             M { name: \"clic.orphan\", kind: C, help: \"\" },\n\
             ];\n\
             pub const STAGES: &[S] = &[];\n",
        )
        .unwrap();
        let g = build(&ws(vec![
            (
                "crates/cluster/src/jobs.rs",
                "cluster",
                "pub fn run_job(m: &Metrics) { record_live(m); }\n",
            ),
            (
                "crates/hw/src/nic.rs",
                "hw",
                "pub fn record_live(m: &Metrics) { m.counter_inc(\"clic.live\", 1); }\n\
                 fn record_orphan(m: &Metrics) { m.counter_inc(\"clic.orphan\", 1); }\n",
            ),
        ]));
        let f = run(&g, &catalog, &FlowPolicy::default());
        let un: Vec<_> = f.iter().filter(|x| x.rule == "unreachable-name").collect();
        assert_eq!(un.len(), 1, "{f:?}");
        assert!(un[0].message.contains("clic.orphan"));
        assert_eq!(un[0].file, "crates/sim/src/catalog.rs");
        assert_eq!(un[0].path, vec!["hw::record_orphan"]);
    }
}
