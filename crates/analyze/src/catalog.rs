//! Static parsing of the central observability catalog
//! (`crates/sim/src/catalog.rs`).
//!
//! The analyzer re-reads the catalog from source rather than linking
//! against `clic-sim`, so `clic-analyze` stays dependency-free and can
//! lint a workspace that does not currently compile. Parsing leans on the
//! catalog's enforced shape: two `const` arrays (`METRICS`, `STAGES`)
//! whose elements are struct literals in which the **first string literal
//! is the name** and, for metrics, a `C`/`G`/`H` (or spelled-out
//! `MetricKind::*`) identifier gives the kind.

use crate::lexer::{lex, TokKind};

/// Metric instrument kind, mirroring `clic_sim::catalog::MetricKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Monotonic counter.
    Counter,
    /// Level gauge.
    Gauge,
    /// Value distribution.
    Histogram,
}

impl Kind {
    /// Display name, matching the recording-call family.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One parsed catalog entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Registered name.
    pub name: String,
    /// Kind for metric entries; `None` for stage entries.
    pub kind: Option<Kind>,
    /// 1-based line of the entry in `catalog.rs`.
    pub line: u32,
}

/// The parsed catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    /// Metric entries in declaration order.
    pub metrics: Vec<Entry>,
    /// Stage entries in declaration order.
    pub stages: Vec<Entry>,
}

impl Catalog {
    /// Whether `name` (already node-prefix-stripped) is registered for
    /// `kind`.
    pub fn has_metric(&self, name: &str, kind: Kind) -> bool {
        self.metrics
            .iter()
            .any(|e| e.name == name && e.kind == Some(kind))
    }

    /// Whether `name` is a registered stage.
    pub fn has_stage(&self, name: &str) -> bool {
        self.stages.iter().any(|e| e.name == name)
    }
}

/// Strip an `n<idx>.` per-node prefix (mirrors
/// `clic_sim::catalog::strip_node_prefix`).
pub fn strip_node_prefix(name: &str) -> &str {
    let Some(rest) = name.strip_prefix('n') else {
        return name;
    };
    let Some(dot) = rest.find('.') else {
        return name;
    };
    if dot > 0 && rest[..dot].bytes().all(|b| b.is_ascii_digit()) {
        &rest[dot + 1..]
    } else {
        name
    }
}

/// Parse the catalog source. Returns `Err` with a human message when the
/// expected `METRICS` / `STAGES` arrays cannot be found.
pub fn parse(src: &str) -> Result<Catalog, String> {
    let lexed = lex(src);
    let metrics = parse_array(&lexed.toks, "METRICS", true)
        .ok_or("catalog.rs: could not locate `const METRICS` array")?;
    let stages = parse_array(&lexed.toks, "STAGES", false)
        .ok_or("catalog.rs: could not locate `const STAGES` array")?;
    Ok(Catalog { metrics, stages })
}

/// Find `const <name>` and parse its bracketed array of struct-literal
/// elements.
fn parse_array(toks: &[crate::lexer::Tok], name: &str, with_kind: bool) -> Option<Vec<Entry>> {
    // Locate `const <name>`.
    let mut start = None;
    for i in 0..toks.len().saturating_sub(1) {
        if matches!(&toks[i].kind, TokKind::Ident(s) if s == "const")
            && matches!(&toks[i + 1].kind, TokKind::Ident(s) if s == name)
        {
            start = Some(i + 2);
            break;
        }
    }
    let mut i = start?;
    // Skip the type annotation: advance past `=` before looking for the
    // array literal's `[` (the type `&[MetricDef]` also contains one).
    while i < toks.len() && !matches!(toks[i].kind, TokKind::Punct('=')) {
        i += 1;
    }
    while i < toks.len() && !matches!(toks[i].kind, TokKind::Punct('[')) {
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    i += 1;
    // Elements are `{ ... }` groups; scan each for its first string
    // literal (the name) and kind identifier.
    let mut entries = Vec::new();
    let mut depth = 0i32;
    let mut current: Option<Entry> = None;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                if depth == 0 {
                    current = Some(Entry {
                        name: String::new(),
                        kind: None,
                        line: toks[i].line,
                    });
                }
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    if let Some(e) = current.take() {
                        if !e.name.is_empty() {
                            entries.push(e);
                        }
                    }
                }
            }
            TokKind::Punct(']') if depth == 0 => break,
            TokKind::Str(s) => {
                if let Some(e) = current.as_mut() {
                    if e.name.is_empty() {
                        e.name.clone_from(s);
                    }
                }
            }
            TokKind::Ident(id) if with_kind => {
                if let Some(e) = current.as_mut() {
                    if e.kind.is_none() {
                        e.kind = match id.as_str() {
                            "C" | "Counter" => Some(Kind::Counter),
                            "G" | "Gauge" => Some(Kind::Gauge),
                            "H" | "Histogram" => Some(Kind::Histogram),
                            _ => None,
                        };
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
const C: MetricKind = MetricKind::Counter;
pub const METRICS: &[MetricDef] = &[
    MetricDef { name: "a.one", kind: C, help: "first" },
    MetricDef { name: "b.two", kind: MetricKind::Histogram, help: "second" },
];
pub const STAGES: &[StageDef] = &[
    StageDef { name: "wire", layers: &[Layer::Eth], help: "w" },
];
"#;

    #[test]
    fn parses_names_kinds_and_lines() {
        let c = parse(SAMPLE).unwrap();
        assert_eq!(c.metrics.len(), 2);
        assert_eq!(c.metrics[0].name, "a.one");
        assert_eq!(c.metrics[0].kind, Some(Kind::Counter));
        assert_eq!(c.metrics[1].name, "b.two");
        assert_eq!(c.metrics[1].kind, Some(Kind::Histogram));
        assert_eq!(c.stages.len(), 1);
        assert_eq!(c.stages[0].name, "wire");
        assert!(c.has_metric("a.one", Kind::Counter));
        assert!(!c.has_metric("a.one", Kind::Gauge));
        assert!(c.has_stage("wire"));
    }

    #[test]
    fn missing_arrays_error() {
        assert!(parse("pub fn nothing() {}").is_err());
    }

    #[test]
    fn node_prefix_strip_matches_runtime() {
        assert_eq!(strip_node_prefix("n3.os.irqs"), "os.irqs");
        assert_eq!(strip_node_prefix("os.irqs"), "os.irqs");
        assert_eq!(strip_node_prefix("nx.os.irqs"), "nx.os.irqs");
    }

    #[test]
    fn parses_the_real_catalog() {
        let root = crate::workspace::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let src = std::fs::read_to_string(root.join("crates/sim/src/catalog.rs")).unwrap();
        let c = parse(&src).unwrap();
        assert!(c.metrics.len() >= 40, "found {}", c.metrics.len());
        assert!(c.stages.len() >= 20, "found {}", c.stages.len());
        assert!(c.has_metric("clic.retransmits", Kind::Counter));
        assert!(c.has_metric("eth.switch.queue_depth", Kind::Gauge));
        assert!(c.has_metric("eth.switch.queue_depth", Kind::Histogram));
        assert!(c.has_stage("driver_rx"));
        assert!(
            c.metrics.iter().all(|m| m.kind.is_some()),
            "every metric entry needs a kind"
        );
    }
}
