//! The asynchronous remote-write primitive (§3.1 step 7): a producer node
//! pushes sensor readings straight into a consumer's registered user-memory
//! region — the consumer never calls receive.
//!
//! ```text
//! cargo run --example remote_write
//! ```

use bytes::Bytes;
use clic::prelude::*;

fn main() {
    let cluster = Cluster::build(&ClusterConfig::paper_pair());
    let mut sim = Sim::new(0);

    let producer_pid = cluster.nodes[0]
        .kernel
        .borrow_mut()
        .processes
        .spawn("producer");
    let consumer_pid = cluster.nodes[1]
        .kernel
        .borrow_mut()
        .processes
        .spawn("consumer");

    const REGION: u16 = 9;
    let producer = ClicPort::bind(&cluster.nodes[0].clic(), producer_pid, 1);
    cluster.nodes[1]
        .clic()
        .borrow_mut()
        .register_remote_write(consumer_pid, REGION);

    // Producer: a burst of readings, no coordination with the consumer.
    let dst = cluster.nodes[1].mac;
    for reading in 0..5u32 {
        let mut sample = vec![0u8; 256];
        sample[..4].copy_from_slice(&reading.to_be_bytes());
        producer.remote_write(&mut sim, dst, REGION, Bytes::from(sample));
    }
    sim.run();

    // Consumer: polls its region whenever it pleases — the data is already
    // in its memory.
    let written = cluster.nodes[1]
        .clic()
        .borrow_mut()
        .take_remote_writes(REGION);
    println!(
        "consumer found {} readings in its region at t = {} (no recv() was ever called):",
        written.len(),
        sim.now()
    );
    for msg in &written {
        let id = u32::from_be_bytes([msg.data[0], msg.data[1], msg.data[2], msg.data[3]]);
        println!("  reading #{id}: {} bytes from {}", msg.data.len(), msg.src);
    }
    assert_eq!(written.len(), 5);
}
