//! Multiprogramming (§5): CLIC "allows the use of threads and the use of
//! CLIC in systems where several processes attempt to access the OS
//! kernel" — and it coexists with the standard TCP/IP stack on the same
//! kernel and NIC. Three independent applications share the same pair of
//! machines:
//!
//! * a CLIC bulk transfer on channel 10,
//! * a CLIC request/reply service on channel 20,
//! * a TCP stream between the same two nodes.
//!
//! All three make progress concurrently over one NIC per node.
//!
//! ```text
//! cargo run --example multiprogramming
//! ```

use bytes::Bytes;
use clic::cluster::builder::ClusterConfig;
use clic::prelude::*;
use clic::tcpip::TcpStack;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::clic_default(&model);
    cfg.node.tcpip = true; // both stacks on the same kernel
    let cluster = Cluster::build(&cfg);
    let mut sim = Sim::new(0);
    let (n0, n1) = (&cluster.nodes[0], &cluster.nodes[1]);

    // --- App 1: CLIC bulk transfer (channel 10) -------------------------
    let bulk_pid_tx = n0.kernel.borrow_mut().processes.spawn("bulk-tx");
    let bulk_pid_rx = n1.kernel.borrow_mut().processes.spawn("bulk-rx");
    let bulk_tx = ClicPort::bind(&n0.clic(), bulk_pid_tx, 10);
    let bulk_rx = ClicPort::bind(&n1.clic(), bulk_pid_rx, 10);
    let bulk_done: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let d = bulk_done.clone();
    bulk_rx.recv(&mut sim, move |sim, msg| {
        assert_eq!(msg.data.len(), 500_000);
        *d.borrow_mut() = Some(sim.now());
    });
    bulk_tx.send(&mut sim, n1.mac, 10, Bytes::from(vec![0xB1u8; 500_000]));

    // --- App 2: CLIC request/reply service (channel 20) -----------------
    let svc_pid = n1.kernel.borrow_mut().processes.spawn("service");
    let svc = Rc::new(ClicPort::bind(&n1.clic(), svc_pid, 20));
    let cli_pid = n0.kernel.borrow_mut().processes.spawn("client");
    let cli = Rc::new(ClicPort::bind(&n0.clic(), cli_pid, 21));
    // Service: echo uppercase, forever-ish.
    fn serve(port: Rc<ClicPort>, sim: &mut Sim, left: usize) {
        if left == 0 {
            return;
        }
        let p = port.clone();
        port.recv(sim, move |sim, msg| {
            let reply: Vec<u8> = msg.data.iter().map(|b| b.to_ascii_uppercase()).collect();
            p.send(sim, msg.src, 21, Bytes::from(reply));
            serve(p.clone(), sim, left - 1);
        });
    }
    serve(svc, &mut sim, 5);
    let replies: Rc<RefCell<Vec<(SimTime, Bytes)>>> = Rc::new(RefCell::new(Vec::new()));
    struct Cli {
        port: Rc<ClicPort>,
        dst: MacAddr,
        replies: Rc<RefCell<Vec<(SimTime, Bytes)>>>,
    }
    fn query(st: Rc<Cli>, sim: &mut Sim, left: usize) {
        if left == 0 {
            return;
        }
        st.port
            .send(sim, st.dst, 20, Bytes::from(format!("request {left}")));
        let st2 = st.clone();
        st.port.recv(sim, move |sim, msg| {
            st2.replies.borrow_mut().push((sim.now(), msg.data));
            query(st2.clone(), sim, left - 1);
        });
    }
    query(
        Rc::new(Cli {
            port: cli,
            dst: n1.mac,
            replies: replies.clone(),
        }),
        &mut sim,
        5,
    );

    // --- App 3: TCP stream on the same nodes ----------------------------
    let tcp_a = n0.tcp();
    let tcp_b = n1.tcp();
    let tcp_got: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    // Server: read 200 KB from whoever connects.
    let tg = tcp_got.clone();
    let tcp_b2 = tcp_b.clone();
    tcp_b.borrow_mut().listen(7777, move |sim, conn| {
        let tg2 = tg.clone();
        TcpStack::recv(&tcp_b2, sim, conn, 200_000, move |sim, _| {
            *tg2.borrow_mut() = Some(sim.now());
        });
    });
    // Client: connect and stream.
    TcpStack::connect(&tcp_a.clone(), &mut sim, n1.ip, 7777, move |sim, conn| {
        TcpStack::send(&tcp_a, sim, conn, Bytes::from(vec![0x7Cu8; 200_000]));
    });

    sim.run();

    println!("three applications shared two nodes and one NIC each:");
    println!(
        "  CLIC bulk   : 500 KB done at t = {}",
        bulk_done.borrow().expect("bulk must finish")
    );
    let replies = replies.borrow();
    println!(
        "  CLIC service: {} request/reply cycles, last at t = {}",
        replies.len(),
        replies.last().unwrap().0
    );
    assert_eq!(replies.len(), 5);
    assert!(replies.iter().all(|(_, r)| r.starts_with(b"REQUEST")));
    println!(
        "  TCP stream  : 200 KB done at t = {}",
        tcp_got.borrow().expect("tcp must finish")
    );
    // Context switches happened on both nodes: real multiprogramming.
    let cs0 = n0.kernel.borrow().stats().context_switches;
    let cs1 = n1.kernel.borrow().stats().context_switches;
    println!("  context switches: node0 = {cs0}, node1 = {cs1}");
}
