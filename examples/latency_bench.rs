//! Latency microbenchmark across every stack the paper evaluates:
//! CLIC, TCP, MPI-on-CLIC, MPI-on-TCP, and the GAMMA-like baseline.
//!
//! ```text
//! cargo run --example latency_bench [size_bytes] [iterations]
//! ```

use clic::cluster::builder::ClusterConfig;
use clic::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let model = CostModel::era_2002();

    println!("one-way latency, {size}-byte messages, {iters} iterations:");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "stack", "min (us)", "mean (us)", "max (us)"
    );

    let stacks = [
        StackKind::Clic,
        StackKind::Tcp,
        StackKind::MpiClic,
        StackKind::MpiTcp,
        StackKind::Gamma,
    ];
    for stack in stacks {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.node = match stack {
            StackKind::Clic => {
                let mut n = NodeConfig::clic_default(&model);
                n.nic = model.nic_low_latency(false);
                n
            }
            StackKind::Tcp => NodeConfig::tcp_default(&model),
            StackKind::MpiClic => NodeConfig::clic_default(&model),
            StackKind::MpiTcp => NodeConfig::tcp_default(&model),
            StackKind::Gamma => NodeConfig::gamma_default(&model),
            StackKind::PvmTcp => unreachable!(),
        };
        let cluster = Cluster::build(&cfg);
        let mut sim = Sim::new(42);
        let result = ping_pong(&cluster, &mut sim, stack, size, iters);
        let one_way = |d: Option<SimDuration>| d.map(|d| d.as_us_f64() / 2.0).unwrap_or(f64::NAN);
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2}",
            stack.label(),
            one_way(result.rtt.min()),
            one_way(result.rtt.mean()),
            one_way(result.rtt.max()),
        );
    }
    println!();
    println!("(paper: CLIC 36 us; GAMMA ~9.5-32 us depending on NIC)");
}
