//! Quickstart: build the paper's two-node Gigabit Ethernet testbed, send a
//! message over CLIC and over TCP/IP, and compare the trip times.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use clic::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // --- CLIC ---------------------------------------------------------
    let cluster = Cluster::build(&ClusterConfig::paper_pair());
    let mut sim = Sim::new(0);

    let tx_pid = cluster.nodes[0]
        .kernel
        .borrow_mut()
        .processes
        .spawn("sender");
    let rx_pid = cluster.nodes[1]
        .kernel
        .borrow_mut()
        .processes
        .spawn("receiver");
    let tx = ClicPort::bind(&cluster.nodes[0].clic(), tx_pid, 7);
    let rx = ClicPort::bind(&cluster.nodes[1].clic(), rx_pid, 7);

    let arrival: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let a = arrival.clone();
    rx.recv(&mut sim, move |sim, msg| {
        println!(
            "CLIC: {:5} bytes from {} arrived at t = {}",
            msg.data.len(),
            msg.src,
            sim.now()
        );
        *a.borrow_mut() = Some(sim.now());
    });
    tx.send(
        &mut sim,
        cluster.nodes[1].mac,
        7,
        Bytes::from(vec![0x42u8; 1400]),
    );
    sim.run();
    let clic_time = arrival.borrow().expect("CLIC delivery");

    // --- TCP/IP on identical hardware ----------------------------------
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::tcp_default(&model);
    let cluster = Cluster::build(&cfg);
    let mut sim = Sim::new(0);
    let res = ping_pong(&cluster, &mut sim, StackKind::Tcp, 1400, 4);
    let tcp_time = res.one_way();

    println!("TCP : 1400 bytes one-way ~ {tcp_time}");
    println!();
    println!(
        "CLIC one-way {} vs TCP one-way {} -> CLIC is {:.1}x faster on this trip",
        clic_time,
        tcp_time,
        tcp_time.as_us_f64() / clic_time.as_us_f64()
    );
}
