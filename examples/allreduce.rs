//! A small parallel computation using the collectives: every rank holds a
//! chunk of a vector; the cluster computes the global sum of squares via
//! `allreduce_sum`, then rank 0 gathers per-rank partials to verify —
//! compared across the MPI-CLIC and MPI-TCP backends.
//!
//! ```text
//! cargo run --example allreduce [ranks] [chunk_elems]
//! ```

use bytes::Bytes;
use clic::cluster::builder::{ClusterConfig, Topology};
use clic::mpi::transport::{ClicTransport, TcpTransport, Transport};
use clic::mpi::{collectives, Mpi};
use clic::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let chunk: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);

    for backend in [StackKind::MpiClic, StackKind::MpiTcp] {
        let (total, elapsed) = run(backend, ranks, chunk);
        let expect: u64 = (0..(ranks * chunk) as u64)
            .map(|x| (x % 100) * (x % 100))
            .sum();
        assert_eq!(total, expect, "distributed sum must match serial sum");
        println!(
            "{:<9} {ranks} ranks x {chunk} elems: sum-of-squares = {total}, \
             allreduce completed in {elapsed}",
            backend.label()
        );
    }
}

fn run(backend: StackKind, ranks: usize, chunk: usize) -> (u64, SimDuration) {
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.nodes = ranks;
    cfg.topology = Topology::Switched;
    cfg.node = match backend {
        StackKind::MpiClic => NodeConfig::clic_default(&model),
        _ => NodeConfig::tcp_default(&model),
    };
    let cluster = Cluster::build(&cfg);
    let mut sim = Sim::new(3);

    let mpis: Vec<Rc<Mpi>> = match backend {
        StackKind::MpiClic => {
            let peers: Vec<MacAddr> = cluster.nodes.iter().map(|n| n.mac).collect();
            cluster
                .nodes
                .iter()
                .enumerate()
                .map(|(rank, node)| {
                    let pid = node.kernel.borrow_mut().processes.spawn("reduce");
                    let t = ClicTransport::new(&mut sim, &node.clic(), pid, rank, peers.clone());
                    Mpi::new(&node.kernel, t)
                })
                .collect()
        }
        _ => {
            let ips: Vec<_> = cluster.nodes.iter().map(|n| n.ip).collect();
            let ts: Vec<Rc<TcpTransport>> = cluster
                .nodes
                .iter()
                .enumerate()
                .map(|(rank, node)| TcpTransport::new(&mut sim, &node.tcp(), rank, ips.clone()))
                .collect();
            sim.run();
            assert!(ts.iter().all(|t| t.ready()));
            cluster
                .nodes
                .iter()
                .zip(ts)
                .map(|(node, t)| Mpi::new(&node.kernel, t as Rc<dyn Transport>))
                .collect()
        }
    };

    // Each rank computes its local partial sum of squares over its slice
    // of the logical vector x[i] = i % 100.
    let start = sim.now();
    let results: Rc<RefCell<Vec<(SimTime, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    for mpi in &mpis {
        let rank = mpi.rank();
        let local: u64 = (0..chunk as u64)
            .map(|i| {
                let x = (rank as u64 * chunk as u64 + i) % 100;
                x * x
            })
            .sum();
        let r = results.clone();
        collectives::allreduce_sum(mpi, &mut sim, local, move |sim, total| {
            r.borrow_mut().push((sim.now(), total));
        });
    }
    sim.run();
    let results = results.borrow();
    assert_eq!(results.len(), ranks, "every rank gets the total");
    let total = results[0].1;
    assert!(results.iter().all(|&(_, t)| t == total));
    let finish = results.iter().map(|&(t, _)| t).max().unwrap();

    // Demonstrate gather too: rank 0 collects each rank's partial.
    let gathered: Rc<RefCell<Option<Vec<Bytes>>>> = Rc::new(RefCell::new(None));
    for mpi in &mpis {
        let rank = mpi.rank();
        let local: u64 = (0..chunk as u64)
            .map(|i| {
                let x = (rank as u64 * chunk as u64 + i) % 100;
                x * x
            })
            .sum();
        let g = gathered.clone();
        collectives::gather(
            mpi,
            &mut sim,
            0,
            Bytes::copy_from_slice(&local.to_be_bytes()),
            move |_s, slots| {
                if !slots.is_empty() {
                    *g.borrow_mut() = Some(slots);
                }
            },
        );
    }
    sim.run();
    let slots = gathered.borrow().clone().expect("rank 0 gathers");
    let sum_of_partials: u64 = slots
        .iter()
        .map(|b| u64::from_be_bytes(b[..8].try_into().unwrap()))
        .sum();
    assert_eq!(sum_of_partials, total, "gather cross-check");

    (total, finish.saturating_since(start))
}
