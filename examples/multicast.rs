//! Ethernet multicast through CLIC (§5: CLIC "takes advantage of the
//! multicast/broadcast capabilities offered by the Ethernet data-link
//! layer"): one control node pushes a configuration blob to a group of
//! workers with a single send through a switch.
//!
//! ```text
//! cargo run --example multicast [workers]
//! ```

use bytes::Bytes;
use clic::cluster::builder::{ClusterConfig, Topology};
use clic::core_proto::ClicModule;
use clic::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);

    let mut cfg = ClusterConfig::paper_pair();
    cfg.nodes = workers + 1;
    cfg.topology = Topology::Switched;
    let cluster = Cluster::build(&cfg);
    let mut sim = Sim::new(0);

    const CH: u16 = 3;
    let group = MacAddr::multicast_group(42);

    // Workers join the group and post receives.
    let received: Rc<RefCell<Vec<(usize, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
    for (i, node) in cluster.nodes.iter().enumerate().skip(1) {
        ClicModule::join_multicast(&node.clic(), group);
        let pid = node.kernel.borrow_mut().processes.spawn("worker");
        let port = ClicPort::bind(&node.clic(), pid, CH);
        let r = received.clone();
        port.recv(&mut sim, move |sim, msg| {
            assert_eq!(&msg.data[..7], b"config!");
            r.borrow_mut().push((i, sim.now()));
        });
    }

    // The controller multicasts once.
    let ctl_pid = cluster.nodes[0].kernel.borrow_mut().processes.spawn("ctl");
    let ctl = ClicPort::bind(&cluster.nodes[0].clic(), ctl_pid, 1);
    ctl.send(
        &mut sim,
        group,
        CH,
        Bytes::from_static(b"config! v2 parameters"),
    );
    sim.run();

    let received = received.borrow();
    println!(
        "one multicast send reached {} of {workers} workers:",
        received.len()
    );
    for (i, at) in received.iter() {
        println!("  worker {i} got the config at t = {at}");
    }
    // The controller's NIC put exactly one frame on the wire.
    let tx_frames = cluster.nodes[0]
        .kernel
        .borrow()
        .device(0)
        .borrow()
        .stats()
        .tx_frames;
    println!("controller transmitted {tx_frames} frame(s) total");
    assert_eq!(tx_frames, 1);
    assert_eq!(received.len(), workers);
}
