//! A 1-D Jacobi halo exchange — the coarse-grained parallel workload the
//! paper's introduction motivates — run on a switched cluster over
//! MPI-on-CLIC and MPI-on-TCP, comparing per-iteration communication time.
//!
//! Each of the N ranks owns a slab of cells and exchanges one halo row
//! with each neighbour per iteration; the computation itself is assumed
//! overlapped (we measure the message layer, as the paper does).
//!
//! ```text
//! cargo run --example mpi_stencil [ranks] [halo_bytes] [iters]
//! ```

use bytes::Bytes;
use clic::cluster::builder::ClusterConfig;
use clic::cluster::builder::Topology;
use clic::mpi::transport::{ClicTransport, TcpTransport, Transport};
use clic::mpi::Mpi;
use clic::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let halo: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8192);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    for backend in [StackKind::MpiClic, StackKind::MpiTcp] {
        let elapsed = run_stencil(backend, ranks, halo, iters);
        println!(
            "{:<9} {ranks} ranks, {halo}-byte halos, {iters} iters: {:.1} us/iter",
            backend.label(),
            elapsed.as_us_f64() / iters as f64
        );
    }
}

fn run_stencil(backend: StackKind, ranks: usize, halo: usize, iters: usize) -> SimDuration {
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.nodes = ranks;
    cfg.topology = Topology::Switched;
    cfg.node = match backend {
        StackKind::MpiClic => NodeConfig::clic_default(&model),
        StackKind::MpiTcp => NodeConfig::tcp_default(&model),
        _ => panic!("stencil runs on MPI backends"),
    };
    let cluster = Cluster::build(&cfg);
    let mut sim = Sim::new(7);

    // Bring up the MPI endpoints.
    let mpis: Vec<Rc<Mpi>> = match backend {
        StackKind::MpiClic => {
            let peers: Vec<MacAddr> = cluster.nodes.iter().map(|n| n.mac).collect();
            cluster
                .nodes
                .iter()
                .enumerate()
                .map(|(rank, node)| {
                    let pid = node.kernel.borrow_mut().processes.spawn("stencil");
                    let t = ClicTransport::new(&mut sim, &node.clic(), pid, rank, peers.clone());
                    Mpi::new(&node.kernel, t)
                })
                .collect()
        }
        _ => {
            let ips: Vec<_> = cluster.nodes.iter().map(|n| n.ip).collect();
            let transports: Vec<Rc<TcpTransport>> = cluster
                .nodes
                .iter()
                .enumerate()
                .map(|(rank, node)| TcpTransport::new(&mut sim, &node.tcp(), rank, ips.clone()))
                .collect();
            sim.run();
            assert!(transports.iter().all(|t| t.ready()));
            cluster
                .nodes
                .iter()
                .zip(transports)
                .map(|(node, t)| Mpi::new(&node.kernel, t as Rc<dyn Transport>))
                .collect()
        }
    };

    // Per-rank iteration driver: send halos to both neighbours, receive
    // both, then start the next iteration. Completion times are recorded at
    // the callback (running the simulator dry also waits out stale protocol
    // timers, which would inflate a wall-clock measurement).
    let done: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
    fn iterate(
        mpi: Rc<Mpi>,
        sim: &mut Sim,
        halo: usize,
        left: usize,
        done: Rc<RefCell<Vec<SimTime>>>,
    ) {
        if left == 0 {
            done.borrow_mut().push(sim.now());
            return;
        }
        let rank = mpi.rank();
        let size = mpi.size();
        let left_n = (rank + size - 1) % size;
        let right_n = (rank + 1) % size;
        mpi.send(sim, left_n, 1, Bytes::from(vec![rank as u8; halo]));
        mpi.send(sim, right_n, 2, Bytes::from(vec![rank as u8; halo]));
        // Receive the matching halos (tag 1 comes from our right, 2 from
        // our left).
        let m2 = mpi.clone();
        let d2 = done.clone();
        mpi.recv(sim, right_n as i32, 1, move |sim, _| {
            let m3 = m2.clone();
            let d3 = d2.clone();
            m2.clone().recv(sim, left_n as i32, 2, move |sim, _| {
                iterate(m3, sim, halo, left - 1, d3);
            });
        });
    }
    let start = sim.now();
    for mpi in &mpis {
        iterate(mpi.clone(), &mut sim, halo, iters, done.clone());
    }
    sim.run();
    let done = done.borrow();
    assert_eq!(done.len(), ranks, "all ranks must finish");
    let finish = done.iter().copied().max().unwrap();
    finish.saturating_since(start)
}
