//! # clic — a simulation-based reproduction of the CLIC lightweight
//! cluster protocol on Gigabit Ethernet (IPPS 2003)
//!
//! CLIC (Díaz, Ortega, Cañas, Fernández, Anguita, Prieto — University of
//! Granada) is a reliable, kernel-resident transport that replaces TCP/IP
//! for intra-cluster communication over Gigabit Ethernet *without modifying
//! NIC drivers*. The original artifact is a Linux 2.4 kernel module driven
//! by real hardware; this workspace reproduces the system and its entire
//! evaluation on a deterministic discrete-event simulation of that
//! hardware and kernel (see `DESIGN.md` for the substitution argument and
//! `EXPERIMENTS.md` for paper-vs-measured results).
//!
//! This crate is the facade: it re-exports the workspace crates and hosts
//! the runnable examples and cross-crate integration tests.
//!
//! ## Quickstart
//!
//! Build the paper's two-node testbed and exchange a message over CLIC:
//!
//! ```
//! use clic::cluster::{Cluster, ClusterConfig};
//! use clic::core_proto::ClicPort;
//! use clic::sim::Sim;
//! use bytes::Bytes;
//! use std::{cell::RefCell, rc::Rc};
//!
//! let cluster = Cluster::build(&ClusterConfig::paper_pair());
//! let mut sim = Sim::new(0);
//!
//! // Bind a port on each node (channel 7).
//! let tx_pid = cluster.nodes[0].kernel.borrow_mut().processes.spawn("sender");
//! let rx_pid = cluster.nodes[1].kernel.borrow_mut().processes.spawn("receiver");
//! let tx = ClicPort::bind(&cluster.nodes[0].clic(), tx_pid, 7);
//! let rx = ClicPort::bind(&cluster.nodes[1].clic(), rx_pid, 7);
//!
//! // Post a blocking receive, send, run the virtual world.
//! let got = Rc::new(RefCell::new(None));
//! let g = got.clone();
//! rx.recv(&mut sim, move |sim, msg| {
//!     *g.borrow_mut() = Some((sim.now(), msg.data));
//! });
//! tx.send(&mut sim, cluster.nodes[1].mac, 7, Bytes::from_static(b"hello, cluster"));
//! sim.run();
//!
//! let (arrived, data) = got.borrow_mut().take().unwrap();
//! assert_eq!(&data[..], b"hello, cluster");
//! // One-way trip on the simulated testbed: some tens of microseconds.
//! assert!(arrived.as_us_f64() < 100.0);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `clic-sim` | discrete-event engine, virtual time, resources |
//! | [`ethernet`] | `clic-ethernet` | frames, links, switch, bonding |
//! | [`hw`] | `clic-hw` | PCI bus, copy model, GbE NIC |
//! | [`os`] | `clic-os` | kernel, syscalls, interrupts, driver, SK_BUFF |
//! | [`tcpip`] | `clic-tcpip` | IPv4 + TCP + UDP baseline stack |
//! | [`core_proto`] | `clic-core` | **the CLIC protocol** |
//! | [`gamma`] | `clic-gamma` | GAMMA-like comparison baseline |
//! | [`mpi`] | `clic-mpi` | MPI-like and PVM-like layers |
//! | [`cluster`] | `clic-cluster` | node/cluster builders, workloads, experiments |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use clic_cluster as cluster;
pub use clic_core as core_proto;
pub use clic_ethernet as ethernet;
pub use clic_gamma as gamma;
pub use clic_hw as hw;
pub use clic_mpi as mpi;
pub use clic_os as os;
pub use clic_sim as sim;
pub use clic_tcpip as tcpip;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use clic_cluster::{
        ping_pong, stream, Cluster, ClusterConfig, CostModel, Node, NodeConfig, StackKind, Topology,
    };
    pub use clic_core::{ClicConfig, ClicModule, ClicPort, RecvMsg};
    pub use clic_ethernet::{LossModel, MacAddr};
    pub use clic_hw::NicConfig;
    pub use clic_sim::{Sim, SimDuration, SimTime};
}
