//! Cross-crate integration tests exercised through the `clic` facade:
//! coexistence of stacks, cluster topologies, determinism, and the
//! paper-shape invariants the reproduction stands on.

use bytes::Bytes;
use clic::cluster::builder::{ClusterConfig, Topology};
use clic::cluster::workload::stream_count;
use clic::cluster::{experiments, ping_pong, stream};
use clic::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn both_stacks_pair() -> ClusterConfig {
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::clic_default(&model);
    cfg.node.tcpip = true;
    cfg
}

/// §3.1: CLIC coexists with the standard stack — same kernel, same driver,
/// same NIC, dispatched by EtherType. Run both protocols between the same
/// pair of nodes in the same simulation.
#[test]
fn clic_and_tcp_coexist_on_one_node() {
    let cluster = Cluster::build(&both_stacks_pair());
    let mut sim = Sim::new(0);

    // CLIC traffic.
    let pid0 = cluster.nodes[0].kernel.borrow_mut().processes.spawn("c0");
    let pid1 = cluster.nodes[1].kernel.borrow_mut().processes.spawn("c1");
    let tx = ClicPort::bind(&cluster.nodes[0].clic(), pid0, 5);
    let rx = ClicPort::bind(&cluster.nodes[1].clic(), pid1, 5);
    let clic_got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = clic_got.clone();
    rx.recv(&mut sim, move |_s, m| *g.borrow_mut() = Some(m.data));

    // TCP traffic, simultaneously.
    use clic::tcpip::TcpStack;
    let a = cluster.nodes[0].tcp();
    let b = cluster.nodes[1].tcp();
    let server: Rc<RefCell<Option<clic::tcpip::ConnId>>> = Rc::new(RefCell::new(None));
    let s2 = server.clone();
    b.borrow_mut()
        .listen(8000, move |_s, id| *s2.borrow_mut() = Some(id));
    let client: Rc<RefCell<Option<clic::tcpip::ConnId>>> = Rc::new(RefCell::new(None));
    let c2 = client.clone();
    TcpStack::connect(&a, &mut sim, cluster.nodes[1].ip, 8000, move |_s, id| {
        *c2.borrow_mut() = Some(id)
    });
    sim.run();

    let tcp_got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = tcp_got.clone();
    TcpStack::recv(
        &b,
        &mut sim,
        server.borrow().unwrap(),
        2000,
        move |_s, d| *g.borrow_mut() = Some(d),
    );
    tx.send(
        &mut sim,
        cluster.nodes[1].mac,
        5,
        Bytes::from(vec![0xC1u8; 3000]),
    );
    TcpStack::send(
        &a,
        &mut sim,
        client.borrow().unwrap(),
        Bytes::from(vec![0x7Cu8; 2000]),
    );
    sim.run();

    assert_eq!(clic_got.borrow().as_ref().unwrap().len(), 3000);
    assert!(clic_got
        .borrow()
        .as_ref()
        .unwrap()
        .iter()
        .all(|&b| b == 0xC1));
    assert_eq!(tcp_got.borrow().as_ref().unwrap().len(), 2000);
    assert!(tcp_got
        .borrow()
        .as_ref()
        .unwrap()
        .iter()
        .all(|&b| b == 0x7C));
}

/// Many-to-one incast over a switch: every worker sends to node 0; all
/// messages arrive intact despite switch queueing.
#[test]
fn switched_incast_delivers_everything() {
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.nodes = 6;
    cfg.topology = Topology::Switched;
    cfg.node = NodeConfig::clic_default(&model);
    let cluster = Cluster::build(&cfg);
    let mut sim = Sim::new(3);

    let sink_pid = cluster.nodes[0].kernel.borrow_mut().processes.spawn("sink");
    let sink = Rc::new(ClicPort::bind(&cluster.nodes[0].clic(), sink_pid, 1));
    let got: Rc<RefCell<Vec<Bytes>>> = Rc::new(RefCell::new(Vec::new()));
    fn drain(port: Rc<ClicPort>, sim: &mut Sim, got: Rc<RefCell<Vec<Bytes>>>, left: usize) {
        if left == 0 {
            return;
        }
        let p = port.clone();
        port.recv(sim, move |sim, m| {
            got.borrow_mut().push(m.data);
            drain(p.clone(), sim, got, left - 1);
        });
    }
    let total = 5 * 4;
    drain(sink.clone(), &mut sim, got.clone(), total);

    let dst = cluster.nodes[0].mac;
    for (i, node) in cluster.nodes.iter().enumerate().skip(1) {
        let pid = node.kernel.borrow_mut().processes.spawn("worker");
        let port = ClicPort::bind(&node.clic(), pid, 2);
        for k in 0..4 {
            port.send(
                &mut sim,
                dst,
                1,
                Bytes::from(vec![(i * 10 + k) as u8; 20_000]),
            );
        }
    }
    sim.set_event_limit(100_000_000);
    sim.run();
    let got = got.borrow();
    assert_eq!(got.len(), total);
    assert!(got.iter().all(|d| d.len() == 20_000));
}

/// The same seed must give bit-identical results (the engine's determinism
/// carried through the full stack).
#[test]
fn full_stack_determinism() {
    fn run_once() -> (u64, f64) {
        let cluster = Cluster::build(&ClusterConfig::paper_pair());
        let mut sim = Sim::new(77);
        let res = stream(&cluster, &mut sim, StackKind::Clic, 8192, 16);
        (sim.events_executed(), res.mbps())
    }
    let (e1, m1) = run_once();
    let (e2, m2) = run_once();
    assert_eq!(e1, e2);
    assert_eq!(m1, m2);
}

/// The headline ordering of Figure 5 on a tiny grid: CLIC beats TCP at
/// every size, for both MTUs.
#[test]
fn fig5_ordering_holds() {
    let sizes = [4_096usize, 262_144];
    let series = experiments::fig5(&sizes);
    let find = |label: &str| {
        series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
    };
    let clic9000 = find("CLIC 9000");
    let tcp9000 = find("TCP 9000");
    let clic1500 = find("CLIC 1500");
    let tcp1500 = find("TCP 1500");
    for (i, &size) in sizes.iter().enumerate() {
        assert!(
            clic9000.points[i].mbps > tcp9000.points[i].mbps,
            "CLIC must beat TCP at {size} (9000)"
        );
        assert!(
            clic1500.points[i].mbps > tcp1500.points[i].mbps,
            "CLIC must beat TCP at {size} (1500)"
        );
    }
    // Asymptotic ratio near the paper's "more than twofold".
    let ratio = clic9000.points[1].mbps / tcp9000.points[1].mbps;
    assert!(
        ratio > 1.6,
        "CLIC/TCP asymptotic ratio {ratio:.2} too small"
    );
}

/// Figure 7's stage structure: the receive interrupt path dominates, and
/// the direct-call improvement shrinks it substantially.
#[test]
fn fig7_stage_structure() {
    let a = experiments::fig7(false);
    let b = experiments::fig7(true);
    let get = |rows: &[experiments::StageRow], name: &str| -> f64 {
        rows.iter()
            .find(|r| r.stage == name)
            .map(|r| r.us)
            .unwrap_or(0.0)
    };
    // 7a: driver_rx is the slowest stage, in the paper's ~15 us band.
    let driver_rx = get(&a, "driver_rx");
    assert!(
        (10.0..25.0).contains(&driver_rx),
        "driver_rx = {driver_rx} us"
    );
    for stage in [
        "syscall",
        "clic_module_tx",
        "driver_tx",
        "bottom_half",
        "clic_module_rx",
    ] {
        assert!(
            get(&a, stage) < driver_rx,
            "{stage} should be faster than driver_rx"
        );
    }
    // 7b: the receive path collapses (paper: ~20 -> ~5 us).
    let rx_total = |rows: &[experiments::StageRow]| {
        ["driver_rx", "bottom_half", "clic_module_rx", "copy_to_user"]
            .iter()
            .map(|s| get(rows, s))
            .sum::<f64>()
    };
    let before = rx_total(&a);
    let after = rx_total(&b);
    assert!(
        after < before / 2.0,
        "direct call must at least halve the receive path: {before:.1} -> {after:.1}"
    );
}

/// 0-byte CLIC latency lands in the paper's band.
#[test]
fn zero_byte_latency_in_band() {
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::clic_default(&model);
    cfg.node.nic = model.nic_low_latency(false);
    let cluster = Cluster::build(&cfg);
    let mut sim = Sim::new(1);
    let pp = ping_pong(&cluster, &mut sim, StackKind::Clic, 0, 10);
    let us = pp.one_way().as_us_f64();
    assert!(
        (25.0..48.0).contains(&us),
        "0-byte one-way latency {us:.1} us vs paper's 36 us"
    );
}

/// Jumbo frames beat the standard MTU for large messages (Figure 4's
/// main effect).
#[test]
fn jumbo_beats_standard_at_large_sizes() {
    let model = CostModel::era_2002();
    let run = |jumbo: bool| {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.node = NodeConfig::clic_default(&model);
        cfg.node.nic = if jumbo {
            model.nic_jumbo()
        } else {
            model.nic_standard()
        };
        let cluster = Cluster::build(&cfg);
        let mut sim = Sim::new(9);
        let size = 1 << 20;
        stream(
            &cluster,
            &mut sim,
            StackKind::Clic,
            size,
            stream_count(size).min(8),
        )
        .mbps()
    };
    let jumbo = run(true);
    let standard = run(false);
    assert!(
        jumbo > standard * 1.15,
        "jumbo {jumbo:.0} should clearly beat standard {standard:.0}"
    );
}

/// Loss injection exercises end-to-end recovery through the full facade.
#[test]
fn lossy_cluster_still_reliable() {
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::clic_default(&model);
    cfg.loss = LossModel::Bernoulli(0.01);
    let cluster = Cluster::build(&cfg);
    let mut sim = Sim::new(13);

    let pid0 = cluster.nodes[0].kernel.borrow_mut().processes.spawn("s");
    let pid1 = cluster.nodes[1].kernel.borrow_mut().processes.spawn("r");
    let tx = ClicPort::bind(&cluster.nodes[0].clic(), pid0, 1);
    let rx = ClicPort::bind(&cluster.nodes[1].clic(), pid1, 1);
    let data = Bytes::from(
        (0..100_000usize)
            .map(|i| (i % 251) as u8)
            .collect::<Vec<_>>(),
    );
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    rx.recv(&mut sim, move |_s, m| *g.borrow_mut() = Some(m.data));
    tx.send(&mut sim, cluster.nodes[1].mac, 1, data.clone());
    sim.set_event_limit(50_000_000);
    sim.run();
    assert_eq!(got.borrow().as_ref().unwrap(), &data);
    assert!(cluster.nodes[0].clic().borrow().stats().retransmits > 0);
}
